(* Tests for atom_nat: naturals, Montgomery arithmetic, primality. *)

open Atom_nat

let nat = Alcotest.testable Nat.pp Nat.equal

let test_of_to_int () =
  List.iter
    (fun i -> Alcotest.(check int) "roundtrip" i (Nat.to_int_exn (Nat.of_int i)))
    [ 0; 1; 2; 1000; 0x3ffffff; 0x4000000; max_int / 4 ];
  Alcotest.(check bool) "zero" true (Nat.is_zero Nat.zero)

let test_add_sub () =
  let a = Nat.of_decimal "123456789012345678901234567890" in
  let b = Nat.of_decimal "987654321098765432109876543210" in
  let s = Nat.add a b in
  Alcotest.(check nat) "a+b" (Nat.of_decimal "1111111110111111111011111111100") s;
  Alcotest.(check nat) "a+b-b" a (Nat.sub s b);
  Alcotest.(check nat) "a+b-a" b (Nat.sub s a);
  Alcotest.check_raises "negative sub" (Invalid_argument "Nat.sub: negative result") (fun () ->
      ignore (Nat.sub a b))

let test_mul () =
  let a = Nat.of_decimal "123456789" in
  let b = Nat.of_decimal "987654321" in
  Alcotest.(check nat) "small product" (Nat.of_decimal "121932631112635269") (Nat.mul a b);
  let big = Nat.of_decimal "340282366920938463463374607431768211455" in
  (* (2^128-1)^2 = 2^256 - 2^129 + 1 *)
  Alcotest.(check nat) "big square"
    (Nat.of_decimal
       "115792089237316195423570985008687907852589419931798687112530834793049593217025")
    (Nat.mul big big);
  Alcotest.(check nat) "times zero" Nat.zero (Nat.mul a Nat.zero)

let test_div_rem () =
  let a = Nat.of_decimal "121932631112635269" in
  let b = Nat.of_decimal "987654321" in
  let q, r = Nat.div_rem a b in
  Alcotest.(check nat) "quotient" (Nat.of_decimal "123456789") q;
  Alcotest.(check nat) "remainder" Nat.zero r;
  let q2, r2 = Nat.div_rem (Nat.add a (Nat.of_int 17)) b in
  Alcotest.(check nat) "quotient 2" (Nat.of_decimal "123456789") q2;
  Alcotest.(check nat) "remainder 2" (Nat.of_int 17) r2;
  Alcotest.check_raises "div by zero" Division_by_zero (fun () -> ignore (Nat.div_rem a Nat.zero))

let test_shift () =
  let a = Nat.of_decimal "12345678901234567890" in
  Alcotest.(check nat) "shift roundtrip" a (Nat.shift_right (Nat.shift_left a 67) 67);
  Alcotest.(check nat) "shl = *2^k" (Nat.mul a (Nat.of_int 1024)) (Nat.shift_left a 10);
  Alcotest.(check nat) "shr drops" (Nat.of_int 1) (Nat.shift_right (Nat.of_int 3) 1);
  Alcotest.(check nat) "shr to zero" Nat.zero (Nat.shift_right a 100)

let test_bytes_roundtrip () =
  let a = Nat.of_hex "deadbeef0123456789abcdef" in
  Alcotest.(check nat) "bytes roundtrip" a (Nat.of_bytes_be (Nat.to_bytes_be a));
  Alcotest.(check string) "hex" "deadbeef0123456789abcdef" (Nat.to_hex a);
  let padded = Nat.to_bytes_be ~length:16 a in
  Alcotest.(check int) "padded length" 16 (String.length padded);
  Alcotest.(check nat) "padded roundtrip" a (Nat.of_bytes_be padded);
  Alcotest.check_raises "too short" (Invalid_argument "Nat.to_bytes_be: does not fit") (fun () ->
      ignore (Nat.to_bytes_be ~length:4 a))

let test_decimal_roundtrip () =
  let s = "115792089237316195423570985008687907853269984665640564039457584007913129639936" in
  Alcotest.(check string) "decimal roundtrip" s (Nat.to_decimal (Nat.of_decimal s));
  Alcotest.(check string) "zero" "0" (Nat.to_decimal Nat.zero)

let test_bit_ops () =
  let a = Nat.of_int 0b1011 in
  Alcotest.(check int) "bit_length" 4 (Nat.bit_length a);
  Alcotest.(check bool) "bit 0" true (Nat.test_bit a 0);
  Alcotest.(check bool) "bit 2" false (Nat.test_bit a 2);
  Alcotest.(check bool) "bit 3" true (Nat.test_bit a 3);
  Alcotest.(check bool) "bit 100" false (Nat.test_bit a 100);
  Alcotest.(check int) "bit_length zero" 0 (Nat.bit_length Nat.zero)

let test_mod_small () =
  let a = Nat.of_decimal "123456789012345678901234567890" in
  Alcotest.(check int) "mod 97" (* computed independently *)
    (let r = ref 0 in
     String.iter (fun c -> r := ((!r * 10) + (Char.code c - 48)) mod 97) "123456789012345678901234567890";
     !r)
    (Nat.mod_small a 97);
  Alcotest.(check int) "mod 2" 0 (Nat.mod_small a 2)

(* Montgomery arithmetic cross-checked against plain Nat arithmetic. *)
let p_test = Nat.of_decimal "57896044618658097711785492504343953926634992332820282019728792003956564819949"
(* 2^255 - 19, a well-known prime *)

let test_modarith_matches_nat () =
  let ctx = Modarith.create p_test in
  let rng = Atom_util.Rng.create 11 in
  for _ = 1 to 50 do
    let a = Nat.random_below rng p_test and b = Nat.random_below rng p_test in
    let ma = Modarith.of_nat ctx a and mb = Modarith.of_nat ctx b in
    Alcotest.(check nat) "add" (Nat.rem (Nat.add a b) p_test) (Modarith.to_nat ctx (Modarith.add ctx ma mb));
    Alcotest.(check nat) "mul" (Nat.rem (Nat.mul a b) p_test) (Modarith.to_nat ctx (Modarith.mul ctx ma mb));
    Alcotest.(check nat) "sqr" (Nat.rem (Nat.mul a a) p_test) (Modarith.to_nat ctx (Modarith.sqr ctx ma));
    let sub_expected = if Nat.compare a b >= 0 then Nat.sub a b else Nat.sub (Nat.add a p_test) b in
    Alcotest.(check nat) "sub" sub_expected (Modarith.to_nat ctx (Modarith.sub ctx ma mb))
  done

let test_modarith_pow () =
  let ctx = Modarith.create p_test in
  let g = Modarith.of_int ctx 5 in
  (* Fermat: g^(p-1) = 1 *)
  let e = Nat.sub p_test Nat.one in
  Alcotest.(check nat) "fermat" Nat.one (Modarith.to_nat ctx (Modarith.pow ctx g e));
  (* pow matches iterated multiplication for small exponents *)
  let acc = ref (Modarith.one ctx) in
  for i = 0 to 20 do
    Alcotest.(check nat)
      (Printf.sprintf "pow %d" i)
      (Modarith.to_nat ctx !acc)
      (Modarith.to_nat ctx (Modarith.pow ctx g (Nat.of_int i)));
    acc := Modarith.mul ctx !acc g
  done

let test_modarith_inv () =
  let ctx = Modarith.create p_test in
  let rng = Atom_util.Rng.create 12 in
  for _ = 1 to 20 do
    let a = Nat.add Nat.one (Nat.random_below rng (Nat.sub p_test Nat.one)) in
    let ma = Modarith.of_nat ctx a in
    let prod = Modarith.mul ctx ma (Modarith.inv ctx ma) in
    Alcotest.(check nat) "a * a^-1 = 1" Nat.one (Modarith.to_nat ctx prod)
  done;
  Alcotest.check_raises "inv zero" Division_by_zero (fun () ->
      ignore (Modarith.inv ctx (Modarith.zero ctx)))

let test_modarith_small_modulus () =
  (* Exhaustive check of multiplication mod 101. *)
  let ctx = Modarith.create (Nat.of_int 101) in
  for a = 0 to 100 do
    for b = 0 to 100 do
      let m =
        Modarith.to_nat ctx (Modarith.mul ctx (Modarith.of_int ctx a) (Modarith.of_int ctx b))
      in
      Alcotest.(check int) "mod 101" (a * b mod 101) (Nat.to_int_exn m)
    done
  done

(* ---- flat kernels vs retained reference implementations ----

   The CIOS kernels must be byte-identical (same limbs, via Modarith.equal)
   to Modarith.Ref — the structurally independent Nat-based slow path —
   across random operands on every modulus the three group backends use:
   the P-256 field prime and curve order, and both Schnorr groups' p and q
   (recovered from the cached group instances: p = 2q + 1). *)

let backend_moduli () =
  let module Z96 = (val Atom_group.Registry.zp_test ()) in
  let module Z256 = (val Atom_group.Registry.zp_medium ()) in
  let schnorr_pair name (order : Nat.t) =
    [ (name ^ "-p", Nat.add (Nat.shift_left order 1) Nat.one); (name ^ "-q", order) ]
  in
  [
    ( "p256-p",
      Nat.of_hex "ffffffff00000001000000000000000000000000ffffffffffffffffffffffff" );
    ( "p256-n",
      Nat.of_hex "ffffffff00000000ffffffffffffffffbce6faada7179e84f3b9cac2fc632551" );
  ]
  @ schnorr_pair "zp96" Z96.Scalar.order
  @ schnorr_pair "zp256" Z256.Scalar.order

let test_flat_vs_ref () =
  List.iter
    (fun (name, m) ->
      let ctx = Modarith.create m in
      let rng = Atom_util.Rng.create 0x51a7 in
      let check label cond = Alcotest.(check bool) (name ^ " " ^ label) true cond in
      for _ = 1 to 25 do
        let a = Nat.random_below rng m and b = Nat.random_below rng m in
        let ma = Modarith.of_nat ctx a and mb = Modarith.of_nat ctx b in
        check "mul" (Modarith.equal (Modarith.mul ctx ma mb) (Modarith.Ref.mul ctx ma mb));
        check "sqr" (Modarith.equal (Modarith.sqr ctx ma) (Modarith.Ref.sqr ctx ma));
        check "add" (Modarith.equal (Modarith.add ctx ma mb) (Modarith.Ref.add ctx ma mb));
        check "sub" (Modarith.equal (Modarith.sub ctx ma mb) (Modarith.Ref.sub ctx ma mb))
      done;
      for _ = 1 to 4 do
        let base = Modarith.of_nat ctx (Nat.random_below rng m) in
        let e = Nat.random_below rng m in
        check "pow" (Modarith.equal (Modarith.pow ctx base e) (Modarith.Ref.pow ctx base e))
      done;
      let pairs =
        Array.init 5 (fun i ->
            ( Modarith.of_nat ctx (Nat.random_below rng m),
              (* mix tiny and full-width exponents so both table shapes run *)
              if i mod 2 = 0 then Nat.of_int i else Nat.random_below rng m ))
      in
      check "msm" (Modarith.equal (Modarith.msm ctx pairs) (Modarith.Ref.msm ctx pairs));
      check "msm_slice"
        (Modarith.equal
           (Modarith.msm_slice ctx pairs ~lo:1 ~hi:4)
           (Modarith.Ref.msm ctx (Array.sub pairs 1 3))))
    (backend_moduli ())

(* The in-place session surface against the same reference, including the
   documented aliasing cases (dst == operand). *)
let test_session_inplace () =
  List.iter
    (fun (name, m) ->
      let ctx = Modarith.create m in
      let rng = Atom_util.Rng.create 0x5e55 in
      let check label cond = Alcotest.(check bool) (name ^ " " ^ label) true cond in
      for _ = 1 to 10 do
        let a = Modarith.of_nat ctx (Nat.random_below rng m) in
        let b = Modarith.of_nat ctx (Nat.random_below rng m) in
        let e = Nat.random_below rng m in
        Modarith.with_session ctx (fun s ->
            let dst = Modarith.S.take s in
            Modarith.S.mul s ~dst a b;
            check "S.mul" (Modarith.equal dst (Modarith.Ref.mul ctx a b));
            Modarith.S.sqr s ~dst a;
            check "S.sqr" (Modarith.equal dst (Modarith.Ref.sqr ctx a));
            Modarith.S.add s ~dst a b;
            check "S.add" (Modarith.equal dst (Modarith.Ref.add ctx a b));
            Modarith.S.sub s ~dst a b;
            check "S.sub" (Modarith.equal dst (Modarith.Ref.sub ctx a b));
            (* aliasing: dst is also an operand *)
            Modarith.copy_into ~dst a;
            Modarith.S.mul s ~dst dst b;
            check "S.mul dst=a" (Modarith.equal dst (Modarith.Ref.mul ctx a b));
            Modarith.copy_into ~dst a;
            Modarith.S.sqr s ~dst dst;
            check "S.sqr dst=a" (Modarith.equal dst (Modarith.Ref.sqr ctx a));
            (* pow, with dst aliasing the base *)
            Modarith.S.pow s ~dst a e;
            check "S.pow" (Modarith.equal dst (Modarith.Ref.pow ctx a e));
            Modarith.copy_into ~dst a;
            Modarith.S.pow s ~dst dst e;
            check "S.pow dst=base" (Modarith.equal dst (Modarith.Ref.pow ctx a e));
            (* mark/release: slots reused after release still compute right *)
            let mark = Modarith.S.mark s in
            let t1 = Modarith.S.take s in
            Modarith.S.mul s ~dst:t1 a b;
            Modarith.S.release s mark;
            let t2 = Modarith.S.take s in
            Modarith.S.mul s ~dst:t2 b a;
            check "arena reuse" (Modarith.equal t2 (Modarith.Ref.mul ctx a b));
            Modarith.S.release s mark)
      done)
    [
      ( "p256-p",
        Nat.of_hex "ffffffff00000001000000000000000000000000ffffffffffffffffffffffff" );
      ("small", Nat.of_int 65537);
    ]

(* The tentpole's contract: steady-state Montgomery mul/sqr (and the
   in-place add/sub) allocate zero words. The only allocation in the
   measurement window is Gc.minor_words itself boxing its float result, so
   the slack is a few hundred words against 40k kernel calls — under one
   hundredth of a word per call. *)
let test_kernels_zero_alloc () =
  let m = Nat.of_hex "ffffffff00000001000000000000000000000000ffffffffffffffffffffffff" in
  let ctx = Modarith.create m in
  let rng = Atom_util.Rng.create 0xa110c in
  let a = Modarith.of_nat ctx (Nat.random_below rng m) in
  let b = Modarith.of_nat ctx (Nat.random_below rng m) in
  Modarith.with_session ctx (fun s ->
      let dst = Modarith.S.take s in
      (* warm up: any arena growth happens on the first calls *)
      Modarith.S.mul s ~dst a b;
      Modarith.S.sqr s ~dst dst;
      let m0 = Gc.minor_words () in
      for _ = 1 to 10_000 do
        Modarith.S.mul s ~dst a b;
        Modarith.S.sqr s ~dst dst;
        Modarith.S.add s ~dst dst a;
        Modarith.S.sub s ~dst dst b
      done;
      let dm = Gc.minor_words () -. m0 in
      if dm >= 256.0 then
        Alcotest.failf "steady-state kernels allocated %.0f minor words over 40k calls" dm)

let test_prime_known () =
  let primes = [ 2; 3; 5; 7; 97; 65537; 1_000_000_007 ] in
  List.iter
    (fun p -> Alcotest.(check bool) (string_of_int p) true (Prime.is_probable_prime (Nat.of_int p)))
    primes;
  let composites = [ 0; 1; 4; 100; 65535; 561; 41041; 825265 (* Carmichael *) ] in
  List.iter
    (fun c ->
      Alcotest.(check bool) (string_of_int c) false (Prime.is_probable_prime (Nat.of_int c)))
    composites;
  Alcotest.(check bool) "2^255-19" true (Prime.is_probable_prime p_test);
  Alcotest.(check bool) "2^255-19 + 2" false (Prime.is_probable_prime (Nat.add p_test Nat.two))

let test_random_prime () =
  let rng = Atom_util.Rng.create 13 in
  let p = Prime.random_prime rng ~bits:64 in
  Alcotest.(check int) "bit length" 64 (Nat.bit_length p);
  Alcotest.(check bool) "is prime" true (Prime.is_probable_prime p)

let test_safe_prime () =
  let rng = Atom_util.Rng.create 14 in
  let p, q = Prime.random_safe_prime rng ~bits:48 in
  Alcotest.(check int) "bit length" 48 (Nat.bit_length p);
  Alcotest.(check nat) "p = 2q+1" p (Nat.add (Nat.shift_left q 1) Nat.one);
  Alcotest.(check bool) "p prime" true (Prime.is_probable_prime p);
  Alcotest.(check bool) "q prime" true (Prime.is_probable_prime q)

let test_random_below_uniform () =
  (* Rejection sampling over a non-power-of-two bound: bucket counts must be
     uniform (the classic modulo-bias failure would skew low buckets). *)
  let rng = Atom_util.Rng.create 777 in
  let bound = Nat.of_int 1000 in
  let buckets = Array.make 10 0 in
  for _ = 1 to 50_000 do
    let v = Nat.to_int_exn (Nat.random_below rng bound) in
    buckets.(v / 100) <- buckets.(v / 100) + 1
  done;
  (* chi-square, 9 dof: 99.9th percentile ~27.9 *)
  Alcotest.(check bool) "uniform buckets" true
    (Atom_util.Stats.chi_square_uniform buckets < 30.)

(* Property tests *)

let gen_nat : Nat.t QCheck2.Gen.t =
  QCheck2.Gen.map
    (fun s -> Nat.of_bytes_be s)
    QCheck2.Gen.(string_size ~gen:(map Char.chr (int_bound 255)) (int_bound 24))

let prop_add_commutative =
  QCheck2.Test.make ~name:"nat add commutative" ~count:300 (QCheck2.Gen.pair gen_nat gen_nat)
    (fun (a, b) -> Nat.equal (Nat.add a b) (Nat.add b a))

let prop_mul_commutative =
  QCheck2.Test.make ~name:"nat mul commutative" ~count:300 (QCheck2.Gen.pair gen_nat gen_nat)
    (fun (a, b) -> Nat.equal (Nat.mul a b) (Nat.mul b a))

let prop_mul_distributes =
  QCheck2.Test.make ~name:"nat mul distributes over add" ~count:300
    (QCheck2.Gen.triple gen_nat gen_nat gen_nat) (fun (a, b, c) ->
      Nat.equal (Nat.mul a (Nat.add b c)) (Nat.add (Nat.mul a b) (Nat.mul a c)))

let prop_div_rem =
  QCheck2.Test.make ~name:"nat a = q*b + r, r < b" ~count:300 (QCheck2.Gen.pair gen_nat gen_nat)
    (fun (a, b) ->
      QCheck2.assume (not (Nat.is_zero b));
      let q, r = Nat.div_rem a b in
      Nat.equal a (Nat.add (Nat.mul q b) r) && Nat.lt r b)

let prop_bytes_roundtrip =
  QCheck2.Test.make ~name:"nat bytes roundtrip" ~count:300 gen_nat (fun a ->
      Nat.equal a (Nat.of_bytes_be (Nat.to_bytes_be a)))

let prop_decimal_roundtrip =
  QCheck2.Test.make ~name:"nat decimal roundtrip" ~count:200 gen_nat (fun a ->
      Nat.equal a (Nat.of_decimal (Nat.to_decimal a)))

let suite =
  let q t = QCheck_alcotest.to_alcotest t in
  ( "nat",
    [
      Alcotest.test_case "of/to int" `Quick test_of_to_int;
      Alcotest.test_case "add/sub" `Quick test_add_sub;
      Alcotest.test_case "mul" `Quick test_mul;
      Alcotest.test_case "div_rem" `Quick test_div_rem;
      Alcotest.test_case "shifts" `Quick test_shift;
      Alcotest.test_case "bytes roundtrip" `Quick test_bytes_roundtrip;
      Alcotest.test_case "decimal roundtrip" `Quick test_decimal_roundtrip;
      Alcotest.test_case "bit operations" `Quick test_bit_ops;
      Alcotest.test_case "mod_small" `Quick test_mod_small;
      Alcotest.test_case "montgomery matches nat" `Quick test_modarith_matches_nat;
      Alcotest.test_case "montgomery pow" `Quick test_modarith_pow;
      Alcotest.test_case "montgomery inverse" `Quick test_modarith_inv;
      Alcotest.test_case "montgomery small modulus exhaustive" `Slow test_modarith_small_modulus;
      Alcotest.test_case "flat kernels match reference (all backends)" `Quick test_flat_vs_ref;
      Alcotest.test_case "session in-place ops match reference" `Quick test_session_inplace;
      Alcotest.test_case "montgomery kernels allocation-free" `Quick test_kernels_zero_alloc;
      Alcotest.test_case "known primes and composites" `Quick test_prime_known;
      Alcotest.test_case "random prime" `Quick test_random_prime;
      Alcotest.test_case "safe prime" `Quick test_safe_prime;
      Alcotest.test_case "random_below uniform" `Slow test_random_below_uniform;
      q prop_add_commutative;
      q prop_mul_commutative;
      q prop_mul_distributes;
      q prop_div_rem;
      q prop_bytes_roundtrip;
      q prop_decimal_roundtrip;
    ] )
