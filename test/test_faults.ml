(* Churn and fault-injection coverage: the §4.5 buddy-group recovery path
   exercised end to end through the distributed runtime, plus the Faults
   plan machinery itself.

   All distributed runs here use the [Calibrated] cost model so latency is
   a pure function of (seed, fault plan) — the determinism test depends on
   it, and the comparisons between faulty and fault-free rounds stay
   meaningful across hosts. *)

module G = (val Atom_group.Registry.zp_test ())
module Pr = Atom_core.Protocol.Make (G)
module Dist = Atom_core.Distributed.Make (G) (Pr)
open Atom_core
open Atom_sim

let rng () = Atom_util.Rng.create 0xfa17

(* 16 servers in 3 groups of k = 4 with h = 2: quorum 3, each group rides
   out k - quorum = 1 fail-stop without recovery, and buddy recovery can
   resurrect the rest. *)
let churn_config ?(variant = Config.Trap) seed : Config.t =
  {
    (Config.tiny ~variant ~seed ()) with
    Config.n_servers = 16;
    Config.n_groups = 3;
    Config.group_size = 4;
    Config.h = 2;
  }

let messages_of n = List.init n (fun i -> Printf.sprintf "fault-msg-%02d" i)

let submit_all r (net : Pr.network) msgs =
  List.mapi
    (fun i m -> Pr.submit r net ~user:i ~entry_gid:(i mod net.Pr.config.Config.n_groups) m)
    msgs

let check_delivery msgs (outcome : Pr.outcome) =
  Alcotest.(check bool) "no abort" true (outcome.Pr.aborted = None);
  Alcotest.(check (list string)) "all messages delivered" (List.sort compare msgs)
    (List.sort compare outcome.Pr.delivered)

let calibrated = Dist.Calibrated Calibration.paper

(* ---- Faults plan machinery ---- *)

let test_sample_fraction_deterministic () =
  let pick seed = Faults.sample_fraction (Atom_util.Rng.create seed) ~fraction:0.25 ~n:64 in
  let a = pick 5 and b = pick 5 in
  Alcotest.(check (list int)) "same seed, same victims" (Array.to_list a) (Array.to_list b);
  Alcotest.(check int) "ceil(f*n) victims" 16 (Array.length a);
  let sorted = List.sort_uniq compare (Array.to_list a) in
  Alcotest.(check int) "distinct" 16 (List.length sorted);
  List.iter (fun id -> Alcotest.(check bool) "in range" true (id >= 0 && id < 64)) sorted

let test_plan_normalize () =
  let plan =
    Faults.normalize
      [ Faults.recover ~at:3. 1; Faults.fail ~at:1. 0; Faults.fail ~at:2. 1 ]
  in
  Alcotest.(check (list (float 1e-9))) "sorted by time" [ 1.; 2.; 3. ]
    (List.map (fun (ev : Faults.event) -> ev.Faults.at) plan)

let test_install_counts_liveness_flips () =
  let e = Engine.create () in
  let machines =
    Array.init 4 (fun id -> Machine.create e ~id ~cores:4 ~bandwidth:1e9 ~cluster:0)
  in
  let failed_log = ref [] in
  let plan =
    [
      Faults.fail ~at:1. 2;
      Faults.fail ~at:2. 2 (* no-op: already dead; must not count *);
      Faults.recover ~at:3. 2;
      Faults.fail ~at:4. 0;
    ]
  in
  let inj = Faults.install e ~machines plan ~on_fail:(fun sid -> failed_log := sid :: !failed_log) in
  ignore (Engine.run e);
  Alcotest.(check int) "failures counted once" 2 inj.Faults.failures_injected;
  Alcotest.(check int) "recoveries counted" 1 inj.Faults.recoveries_injected;
  Alcotest.(check (list int)) "hooks fired on real flips" [ 0; 2 ] (List.sort compare !failed_log);
  Alcotest.(check bool) "machine 0 dead" false machines.(0).Machine.alive;
  Alcotest.(check bool) "machine 2 back" true machines.(2).Machine.alive

let test_install_rejects_unknown_machine () =
  let e = Engine.create () in
  let machines =
    Array.init 2 (fun id -> Machine.create e ~id ~cores:4 ~bandwidth:1e9 ~cluster:0)
  in
  Alcotest.check_raises "out-of-range sid" (Invalid_argument "Faults.install: no machine 7")
    (fun () -> ignore (Faults.install e ~machines [ Faults.fail ~at:1. 7 ]))

(* ---- Churn matrix: k - quorum failures mid-round, every variant ---- *)

let test_churn_matrix () =
  List.iter
    (fun variant ->
      let r = rng () in
      let config = churn_config ~variant 31 in
      let net = Pr.setup r config () in
      let msgs = messages_of 6 in
      let subs = submit_all r net msgs in
      (* Fail one member (= k - quorum) of every group mid-round: the live
         quorums carry on without any buddy recovery. *)
      let faults =
        List.concat_map
          (fun (g : Pr.group_state) -> [ Faults.fail ~at:0.05 g.Pr.members.(1) ])
          (Array.to_list net.Pr.groups)
      in
      let report = Dist.run ~faults ~costs:calibrated r net subs in
      let vname =
        match variant with Config.Basic -> "basic" | Config.Nizk -> "nizk" | Config.Trap -> "trap"
      in
      Alcotest.(check int)
        (Printf.sprintf "all failures injected (%s)" vname)
        config.Config.n_groups report.Dist.faults.Dist.failures_injected;
      check_delivery msgs report.Dist.outcome)
    [ Config.Basic; Config.Nizk; Config.Trap ]

(* ---- Acceptance: h-1 failures per group, round still completes ---- *)

let test_tolerated_failures_no_recovery_needed () =
  let r = rng () in
  let config = churn_config 32 in
  let net = Pr.setup r config () in
  let msgs = messages_of 6 in
  let subs = submit_all r net msgs in
  let faults =
    List.concat_map
      (fun (g : Pr.group_state) ->
        List.init (config.Config.h - 1) (fun i -> Faults.fail ~at:0.04 g.Pr.members.(i)))
      (Array.to_list net.Pr.groups)
  in
  let report = Dist.run ~faults ~costs:calibrated r net subs in
  check_delivery msgs report.Dist.outcome;
  Alcotest.(check bool) "delivered non-empty" true (report.Dist.outcome.Pr.delivered <> [])

(* ---- Acceptance: a fully dead group is resurrected via its buddies ---- *)

let test_dead_group_buddy_recovery () =
  let config = churn_config 33 in
  let msgs = messages_of 6 in
  let run_with faults =
    let r = rng () in
    let net = Pr.setup r config () in
    let subs = submit_all r net msgs in
    Dist.run ~faults ~costs:calibrated r net subs
  in
  let baseline = run_with [] in
  check_delivery msgs baseline.Dist.outcome;
  (* Kill every member of group 1 mid-round. *)
  let victims =
    let r = rng () in
    let net = Pr.setup r config () in
    Array.copy net.Pr.groups.(1).Pr.members
  in
  let faulty = run_with (Faults.fail_machines ~at:0.05 victims) in
  check_delivery msgs faulty.Dist.outcome;
  Alcotest.(check bool)
    (Printf.sprintf "recoveries %d >= 1" faulty.Dist.faults.Dist.recoveries)
    true
    (faulty.Dist.faults.Dist.recoveries >= 1);
  Alcotest.(check bool)
    (Printf.sprintf "faulty latency %.3fs > clean %.3fs" faulty.Dist.latency baseline.Dist.latency)
    true
    (faulty.Dist.latency > baseline.Dist.latency);
  Alcotest.(check bool) "recovery time accounted" true
    (faulty.Dist.faults.Dist.recovery_latency > 0.)

(* ---- recover_group under maximal churn (synchronous engine) ---- *)

let test_recover_group_maximal_churn () =
  let r = rng () in
  let config = churn_config 34 in
  let net = Pr.setup r config () in
  let msgs = messages_of 6 in
  (* Kill the whole of group 0 — every share lost. *)
  Array.iter (fun sid -> Pr.fail_server net sid) net.Pr.groups.(0).Pr.members;
  let outcome = Pr.run r net (submit_all r net msgs) in
  (match outcome.Pr.aborted with
  | Some (Pr.Group_down { gid = 0 }) -> ()
  | _ -> Alcotest.fail "expected group 0 down");
  (* The buddy group re-shares every sub-share: full resurrection. *)
  Alcotest.(check bool) "maximal recovery succeeds" true (Pr.recover_group net 0);
  let outcome = Pr.run r net (submit_all r net msgs) in
  check_delivery msgs outcome

(* ---- Determinism: identical (seed, plan) replays bit-identically ---- *)

let test_fault_replay_deterministic () =
  let config = churn_config 35 in
  let msgs = messages_of 5 in
  let one () =
    let r = Atom_util.Rng.create 0xd0d0 in
    let net = Pr.setup r config () in
    let subs = submit_all r net msgs in
    let faults =
      Faults.fail_machines ~at:0.05 net.Pr.groups.(2).Pr.members
      @ [ Faults.fail ~at:0.02 net.Pr.groups.(0).Pr.members.(0) ]
    in
    Dist.run ~faults ~loss_prob:0.05 ~costs:calibrated r net subs
  in
  let a = one () and b = one () in
  Alcotest.(check (float 0.)) "identical latency" a.Dist.latency b.Dist.latency;
  Alcotest.(check int) "identical event counts" a.Dist.events b.Dist.events;
  Alcotest.(check (list string)) "identical deliveries"
    (List.sort compare a.Dist.outcome.Pr.delivered)
    (List.sort compare b.Dist.outcome.Pr.delivered);
  Alcotest.(check int) "identical retransmits" a.Dist.faults.Dist.retransmits
    b.Dist.faults.Dist.retransmits;
  Alcotest.(check int) "identical timeouts" a.Dist.faults.Dist.timeouts_fired
    b.Dist.faults.Dist.timeouts_fired

(* ---- Telemetry plumbing ---- *)

let test_report_carries_drop_counters () =
  (* A lossy round surfaces link-layer telemetry in the report. *)
  let r = rng () in
  let config = churn_config 36 in
  let net = Pr.setup r config () in
  let msgs = messages_of 5 in
  let report = Dist.run ~loss_prob:0.3 ~costs:calibrated r net (submit_all r net msgs) in
  check_delivery msgs report.Dist.outcome;
  Alcotest.(check bool) "retransmits observed" true (report.Dist.faults.Dist.retransmits > 0);
  Alcotest.(check int) "nothing dropped at this loss rate" 0
    report.Dist.faults.Dist.messages_dropped

let test_controller_recovery_telemetry () =
  let c = Controller.create () in
  Alcotest.(check int) "starts at zero" 0 (Controller.total_recoveries c);
  Controller.note_recoveries c 3;
  ignore (Controller.record c ~aborted:false ~blamed:[]);
  Controller.note_recoveries c 1;
  Alcotest.(check int) "accumulates" 4 (Controller.total_recoveries c);
  Alcotest.(check bool) "churn never flips the variant" true
    (Controller.variant c = Config.Trap)

let suite =
  ( "faults",
    [
      Alcotest.test_case "sample_fraction deterministic" `Quick test_sample_fraction_deterministic;
      Alcotest.test_case "plan normalize" `Quick test_plan_normalize;
      Alcotest.test_case "install counts liveness flips" `Quick test_install_counts_liveness_flips;
      Alcotest.test_case "install rejects unknown machine" `Quick
        test_install_rejects_unknown_machine;
      Alcotest.test_case "churn matrix (all variants)" `Quick test_churn_matrix;
      Alcotest.test_case "h-1 failures tolerated" `Quick test_tolerated_failures_no_recovery_needed;
      Alcotest.test_case "dead group buddy recovery" `Quick test_dead_group_buddy_recovery;
      Alcotest.test_case "recover_group maximal churn" `Quick test_recover_group_maximal_churn;
      Alcotest.test_case "fault replay determinism" `Quick test_fault_replay_deterministic;
      Alcotest.test_case "report drop counters" `Quick test_report_carries_drop_counters;
      Alcotest.test_case "controller recovery telemetry" `Quick test_controller_recovery_telemetry;
    ] )
