let () =
  Alcotest.run "atom"
    [
      Test_util.suite;
      Test_nat.suite;
      Test_hash.suite;
      Test_cipher.suite;
      Test_group.suite ();
      Test_fastpath.suite ();
      Test_elgamal.suite ();
      Test_zkp.suite ();
      Test_zkp.suite_p256 ();
      Test_secret.suite;
      Test_sim.suite;
      Test_topology.suite;
      Test_protocol.suite;
      Test_simulate.suite;
      Test_apps.suite;
      Test_baseline.suite;
      Test_extended.suite;
      Test_wire.suite;
      Test_validation.suite;
      Test_anonymity.suite;
      Test_misc.suite;
      Test_faults.suite;
      Test_obs.suite;
      Test_exec.suite;
      Test_rpc.suite;
      Test_ingest.suite;
    ]
