(* Tests for atom_group: generic group laws over every backend, plus
   P-256-specific known-answer vectors. *)

open Atom_nat

(* Generic law tests, instantiated per backend. *)
module Laws (G : Atom_group.Group_intf.GROUP) = struct
  let rng () = Atom_util.Rng.create (Atom_util.Rng.hash_string G.name)

  let test_identity () =
    let r = rng () in
    for _ = 1 to 5 do
      let x = G.random r in
      Alcotest.(check bool) "x*1 = x" true (G.equal (G.mul x G.one) x);
      Alcotest.(check bool) "1*x = x" true (G.equal (G.mul G.one x) x);
      Alcotest.(check bool) "x/x = 1" true (G.is_one (G.div x x))
    done

  let test_associativity_commutativity () =
    let r = rng () in
    for _ = 1 to 5 do
      let a = G.random r and b = G.random r and c = G.random r in
      Alcotest.(check bool) "assoc" true (G.equal (G.mul (G.mul a b) c) (G.mul a (G.mul b c)));
      Alcotest.(check bool) "comm" true (G.equal (G.mul a b) (G.mul b a))
    done

  let test_pow_homomorphism () =
    let r = rng () in
    for _ = 1 to 5 do
      let a = G.Scalar.random r and b = G.Scalar.random r in
      let lhs = G.pow_gen (G.Scalar.add a b) in
      let rhs = G.mul (G.pow_gen a) (G.pow_gen b) in
      Alcotest.(check bool) "g^(a+b) = g^a g^b" true (G.equal lhs rhs);
      let x = G.random r in
      Alcotest.(check bool) "(x^a)^b = x^(ab)" true
        (G.equal (G.pow (G.pow x a) b) (G.pow x (G.Scalar.mul a b)))
    done

  let test_pow_edge_cases () =
    let r = rng () in
    let x = G.random r in
    Alcotest.(check bool) "x^0 = 1" true (G.is_one (G.pow x G.Scalar.zero));
    Alcotest.(check bool) "x^1 = x" true (G.equal (G.pow x G.Scalar.one) x);
    (* x^(q-1) * x = x^q = 1 *)
    let q1 = G.Scalar.of_nat (Nat.sub G.Scalar.order Nat.one) in
    Alcotest.(check bool) "x^q = 1" true (G.is_one (G.mul (G.pow x q1) x));
    Alcotest.(check bool) "1^k = 1" true (G.is_one (G.pow G.one (G.Scalar.random r)))

  let test_inverse () =
    let r = rng () in
    for _ = 1 to 5 do
      let x = G.random r in
      Alcotest.(check bool) "x * x^-1 = 1" true (G.is_one (G.mul x (G.inv x)));
      let k = G.Scalar.random r in
      Alcotest.(check bool) "x^-k = (x^k)^-1" true
        (G.equal (G.pow x (G.Scalar.neg k)) (G.inv (G.pow x k)))
    done

  let test_encoding_roundtrip () =
    let r = rng () in
    for _ = 1 to 5 do
      let x = G.random r in
      let bytes = G.to_bytes x in
      Alcotest.(check int) "encoding length" G.element_bytes (String.length bytes);
      match G.of_bytes bytes with
      | Some y -> Alcotest.(check bool) "roundtrip" true (G.equal x y)
      | None -> Alcotest.fail "decode failed"
    done;
    (* Identity roundtrips too. *)
    (match G.of_bytes (G.to_bytes G.one) with
    | Some y -> Alcotest.(check bool) "identity roundtrip" true (G.is_one y)
    | None -> Alcotest.fail "identity decode failed");
    Alcotest.(check bool) "garbage rejected" true (G.of_bytes (String.make G.element_bytes '\xfe') = None);
    Alcotest.(check bool) "wrong length rejected" true (G.of_bytes "short" = None)

  let test_embedding () =
    let r = rng () in
    for _ = 1 to 10 do
      let payload = Atom_util.Rng.bytes r G.embed_bytes in
      match G.embed payload with
      | None -> Alcotest.fail "embed failed"
      | Some el -> (
          match G.extract el with
          | None -> Alcotest.fail "extract failed"
          | Some back -> Alcotest.(check string) "payload roundtrip" payload back)
    done;
    (* Short payloads are left-padded. *)
    (match G.embed "hi" with
    | Some el ->
        let got = Option.get (G.extract el) in
        Alcotest.(check string) "padded payload"
          (String.make (G.embed_bytes - 2) '\000' ^ "hi")
          got
    | None -> Alcotest.fail "short embed failed");
    Alcotest.(check bool) "oversize rejected" true
      (G.embed (String.make (G.embed_bytes + 1) 'x') = None);
    (* A random group element is (almost surely) not a valid embedding for
       P-256 (framing marker); for Zp extraction may succeed but must then be
       a consistent roundtrip, so only check embed-then-extract here. *)
    ignore r

  let test_scalar_field () =
    let r = rng () in
    for _ = 1 to 10 do
      let a = G.Scalar.random r and b = G.Scalar.random r in
      Alcotest.(check bool) "add comm" true (G.Scalar.equal (G.Scalar.add a b) (G.Scalar.add b a));
      Alcotest.(check bool) "sub inverse" true
        (G.Scalar.equal a (G.Scalar.add (G.Scalar.sub a b) b));
      if not (G.Scalar.is_zero a) then
        Alcotest.(check bool) "mul inverse" true
          (G.Scalar.equal G.Scalar.one (G.Scalar.mul a (G.Scalar.inv a)))
    done;
    let x = G.Scalar.random r in
    Alcotest.(check bool) "scalar bytes roundtrip" true
      (G.Scalar.equal x (G.Scalar.of_bytes_mod (G.Scalar.to_bytes x)))

  let test_hash_to_scalar () =
    let a = G.hash_to_scalar "input one" and b = G.hash_to_scalar "input two" in
    Alcotest.(check bool) "distinct inputs" false (G.Scalar.equal a b);
    Alcotest.(check bool) "deterministic" true
      (G.Scalar.equal a (G.hash_to_scalar "input one"))

  let cases =
    [
      Alcotest.test_case (G.name ^ " identity laws") `Quick test_identity;
      Alcotest.test_case (G.name ^ " assoc/comm") `Quick test_associativity_commutativity;
      Alcotest.test_case (G.name ^ " pow homomorphism") `Quick test_pow_homomorphism;
      Alcotest.test_case (G.name ^ " pow edge cases") `Quick test_pow_edge_cases;
      Alcotest.test_case (G.name ^ " inverses") `Quick test_inverse;
      Alcotest.test_case (G.name ^ " encoding") `Quick test_encoding_roundtrip;
      Alcotest.test_case (G.name ^ " message embedding") `Quick test_embedding;
      Alcotest.test_case (G.name ^ " scalar field") `Quick test_scalar_field;
      Alcotest.test_case (G.name ^ " hash to scalar") `Quick test_hash_to_scalar;
    ]
end

(* P-256 known-answer tests. *)
let test_p256_generator_on_curve () =
  Alcotest.(check bool) "G on curve" true (Atom_group.P256.on_curve Atom_group.P256.generator)

let test_p256_double_g () =
  let module P = Atom_group.P256 in
  let two_g = P.mul P.generator P.generator in
  let expected_x = "7cf27b188d034f7e8a52380304b51ac3c08969e277f21b35a60b48fc47669978" in
  let expected_y = "07775510db8ed040293d9ac69f7430dbba7dade63ce982299e04b79d227873d1" in
  match two_g with
  | P.Inf -> Alcotest.fail "2G is infinity"
  | P.Aff (_, y) ->
      let bytes = P.to_bytes two_g in
      Alcotest.(check string) "2G x-coordinate" expected_x
        (Atom_util.Hex.encode (String.sub bytes 1 32));
      let y_nat = Atom_nat.Modarith.to_nat Atom_group.P256.fp y in
      Alcotest.(check string) "2G y-coordinate" expected_y
        (Atom_util.Hex.encode (Atom_nat.Nat.to_bytes_be ~length:32 y_nat))

let test_p256_order () =
  let module P = Atom_group.P256 in
  (* (n-1)·G + G = nG = O *)
  let n1 = P.Scalar.of_nat (Nat.sub P.Scalar.order Nat.one) in
  Alcotest.(check bool) "nG = O" true (P.is_one (P.mul (P.pow_gen n1) P.generator));
  (* (n-1)·G = -G *)
  Alcotest.(check bool) "(n-1)G = -G" true (P.equal (P.pow_gen n1) (P.inv P.generator))

let test_p256_pow_matches_additions () =
  let module P = Atom_group.P256 in
  let acc = ref P.one in
  for k = 0 to 20 do
    Alcotest.(check bool)
      (Printf.sprintf "%dG" k)
      true
      (P.equal !acc (P.pow_gen (P.Scalar.of_int k)));
    acc := P.mul !acc P.generator
  done

let test_p256_field_prime_is_prime () =
  Alcotest.(check bool) "p prime" true (Atom_nat.Prime.is_probable_prime Atom_group.P256.p);
  Alcotest.(check bool) "n prime" true (Atom_nat.Prime.is_probable_prime Atom_group.P256.n)

let test_p256_compressed_generator () =
  (* Known compressed encoding of the generator: Gy is odd, so the prefix
     is 0x03 followed by Gx. *)
  let module P = Atom_group.P256 in
  let compressed =
    Atom_util.Hex.decode "036b17d1f2e12c4247f8bce6e563a440f277037d812deb33a0f4a13945d898c296"
  in
  (match P.of_bytes compressed with
  | Some pt -> Alcotest.(check bool) "decodes to G" true (P.equal pt P.generator)
  | None -> Alcotest.fail "generator failed to decode");
  Alcotest.(check string) "re-encodes identically" (Atom_util.Hex.encode compressed)
    (Atom_util.Hex.encode (P.to_bytes P.generator))

let test_zp_subgroup_validation () =
  let module G = (val Atom_group.Registry.zp_test ()) in
  let params = Atom_group.Zp.test_params () in
  let g_bytes = G.to_bytes G.generator in
  (match G.of_bytes g_bytes with
  | None -> Alcotest.fail "generator should decode"
  | Some _ -> ());
  Alcotest.(check bool) "zero rejected" true
    (G.of_bytes (String.make G.element_bytes '\000') = None);
  (* In the QR⁺ representation the canonical range is 1 ≤ v ≤ q: anything
     in (q, p) — e.g. p - g, the non-canonical mirror of the generator —
     must be rejected even though it is a valid residue-class encoding. *)
  let mirror =
    Nat.to_bytes_be ~length:G.element_bytes
      (Nat.sub params.Atom_group.Zp.p (Nat.of_bytes_be g_bytes))
  in
  Alcotest.(check bool) "non-canonical mirror rejected" true (G.of_bytes mirror = None);
  Alcotest.(check bool) "v = q accepted" true
    (G.of_bytes (Nat.to_bytes_be ~length:G.element_bytes params.Atom_group.Zp.q) <> None);
  Alcotest.(check bool) "v = q+1 rejected" true
    (G.of_bytes
       (Nat.to_bytes_be ~length:G.element_bytes (Nat.add params.Atom_group.Zp.q Nat.one))
    = None);
  Alcotest.(check bool) "v >= p rejected" true
    (G.of_bytes (Nat.to_bytes_be ~length:G.element_bytes params.Atom_group.Zp.p) = None)

let suite () =
  let module Zp_laws = Laws ((val Atom_group.Registry.zp_test ())) in
  let module Zp256_laws = Laws ((val Atom_group.Registry.zp_medium ())) in
  let module P256_laws = Laws (Atom_group.P256) in
  ( "group",
    Zp_laws.cases @ Zp256_laws.cases @ P256_laws.cases
    @ [
        Alcotest.test_case "p256 generator on curve" `Quick test_p256_generator_on_curve;
        Alcotest.test_case "p256 2G known answer" `Quick test_p256_double_g;
        Alcotest.test_case "p256 group order" `Quick test_p256_order;
        Alcotest.test_case "p256 pow = repeated addition" `Quick test_p256_pow_matches_additions;
        Alcotest.test_case "p256 parameters prime" `Slow test_p256_field_prime_is_prime;
        Alcotest.test_case "p256 compressed generator" `Quick test_p256_compressed_generator;
        Alcotest.test_case "zp subgroup validation" `Quick test_zp_subgroup_validation;
      ] )
