(* The RPC layer: transport implementations and the multi-process node
   runtime.

   Three angles:
   - the TCP transport's socket mechanics on loopback (framed delivery,
     ordering, self-send, timeouts, unknown peers);
   - a full cluster round over the simulator transport, inside engine
     processes — deterministic, so two runs must replay bit-identically
     and match the single-process reference for every variant;
   - the same node runtime over real TCP, with each server on its own
     thread, pinning both transports to the same semantics. *)

module G = (val Atom_group.Registry.zp_test ())
module SimT = Atom_rpc.Sim_transport
module TcpT = Atom_rpc.Tcp_transport
module NodeSim = Atom_rpc.Node.Make (G) (SimT.Check)
module NodeTcp = Atom_rpc.Node.Make (G) (TcpT.Check)
module Pr = NodeSim.Pr
module El = Pr.El
module Ctrl = Atom_wire.Control
open Atom_core
open Atom_sim

(* Both implementations really do satisfy the transport signature. *)
module _ : Atom_rpc.Transport.S = SimT.Check
module _ : Atom_rpc.Transport.S = TcpT.Check

(* ---- TCP transport mechanics ---- *)

let test_tcp_loopback () =
  let a = TcpT.create ~node_id:0 () in
  let b = TcpT.create ~node_id:1 () in
  TcpT.add_peer a ~node_id:1 ~host:"127.0.0.1" ~port:(TcpT.port b);
  TcpT.add_peer b ~node_id:0 ~host:"127.0.0.1" ~port:(TcpT.port a);
  Alcotest.(check int) "self id" 0 (TcpT.self a);
  Alcotest.(check (list int)) "peer ids" [ 1 ] (TcpT.peer_ids a);
  let f1 = Ctrl.encode (Ctrl.Ack { token = 41 }) in
  let f2 = Ctrl.encode (Ctrl.Barrier { iter = 7 }) in
  Alcotest.(check bool) "send 1" true (TcpT.send a ~dst:1 f1 = Ok ());
  Alcotest.(check bool) "send 2" true (TcpT.send a ~dst:1 f2 = Ok ());
  (* Same-pair ordering holds: one pooled stream per direction. *)
  (match TcpT.recv b ~timeout:5.0 with
  | Ok (src, frame) ->
      Alcotest.(check int) "src" 0 src;
      Alcotest.(check string) "frame 1 intact" f1 frame
  | Error e -> Alcotest.failf "first frame: %s" (Atom_rpc.Transport.error_to_string e));
  (match TcpT.recv b ~timeout:5.0 with
  | Ok (_, frame) -> Alcotest.(check string) "frame 2 in order" f2 frame
  | Error e -> Alcotest.failf "second frame: %s" (Atom_rpc.Transport.error_to_string e));
  (* Self-send loops through the inbox without a socket. *)
  Alcotest.(check bool) "self-send accepted" true (TcpT.send b ~dst:1 f1 = Ok ());
  (match TcpT.recv b ~timeout:5.0 with
  | Ok (src, frame) ->
      Alcotest.(check int) "self src" 1 src;
      Alcotest.(check string) "self frame" f1 frame
  | Error e -> Alcotest.failf "self-send: %s" (Atom_rpc.Transport.error_to_string e));
  (* Failures are typed, and shared with the simulator transport. *)
  (match TcpT.send a ~dst:99 f1 with
  | Error (Atom_rpc.Transport.Unknown_peer 99) -> ()
  | Ok () -> Alcotest.fail "unknown peer accepted"
  | Error e -> Alcotest.failf "unknown peer: %s" (Atom_rpc.Transport.error_to_string e));
  (match TcpT.recv a ~timeout:0.05 with
  | Error Atom_rpc.Transport.Timeout -> ()
  | Ok _ -> Alcotest.fail "empty recv delivered"
  | Error e -> Alcotest.failf "empty recv: %s" (Atom_rpc.Transport.error_to_string e));
  TcpT.close a;
  (* A closed endpoint reports [Closed], not a timeout. *)
  (match TcpT.send a ~dst:1 f1 with
  | Error Atom_rpc.Transport.Closed -> ()
  | r ->
      Alcotest.failf "closed send: %s"
        (match r with Ok () -> "accepted" | Error e -> Atom_rpc.Transport.error_to_string e));
  TcpT.close b

(* ---- ReEnc proof blobs (the one node-layer codec) ---- *)

let test_reenc_blob_roundtrip () =
  let r = Atom_util.Rng.create 0x99 in
  let kp = El.keygen r in
  let v = fst (El.enc_vec r kp.El.pk [| G.random r; G.random r |]) in
  let _, pis =
    Pr.P.Reenc_proof.reenc_vec_with_proof r ~share:(G.Scalar.random r)
      ~coeff:(G.Scalar.random r) ~next_pk:None ~context:"blob" v
  in
  let blob = NodeSim.reenc_proofs_to_blob pis in
  (match NodeSim.reenc_proofs_of_blob blob with
  | None -> Alcotest.fail "blob decode failed"
  | Some pis' -> Alcotest.(check int) "proof count" (Array.length pis) (Array.length pis'));
  for i = 0 to String.length blob - 1 do
    if NodeSim.reenc_proofs_of_blob (String.sub blob 0 i) <> None then
      Alcotest.failf "blob truncation at byte %d accepted" i
  done

let prop_reenc_blob_total =
  QCheck2.Test.make ~name:"reenc_proofs_of_blob never raises" ~count:300
    QCheck2.Gen.(string_size ~gen:(map Char.chr (int_bound 255)) (int_bound 200))
    (fun s -> match NodeSim.reenc_proofs_of_blob s with Some _ | None -> true)

(* ---- Cluster rounds over the simulator transport ---- *)

(* The CI smoke shape: 8 servers, 4 groups of 2 with h = 1 (quorum 2),
   3 square iterations. *)
let cluster_config variant =
  {
    (Config.tiny ~variant ~seed:5 ()) with
    Config.n_servers = 8;
    n_groups = 4;
    group_size = 2;
    h = 1;
    topology = Config.Square 3;
  }

let run_sim_cluster (config : Config.t) ~(users : int) : NodeSim.cluster_outcome =
  let e = Engine.create () in
  let net = Net.create e in
  let n = config.Config.n_servers in
  let coord = n in
  let machines =
    Array.init (n + 1) (fun id -> Machine.create e ~id ~cores:4 ~bandwidth:1e9 ~cluster:0)
  in
  let fleet = SimT.fleet e net ~machines in
  for sid = 0 to n - 1 do
    Engine.spawn e (fun () ->
        NodeSim.run_node fleet.(sid) ~config ~node_id:sid ~coord ~recv_timeout:1.0
          ~max_idle:120 ())
  done;
  let outcome = ref None in
  Engine.spawn e (fun () ->
      outcome :=
        Some (NodeSim.run_coordinator fleet.(coord) ~config ~users ~recv_timeout:1.0 ~max_idle:120 ()));
  ignore (Engine.run e);
  match !outcome with
  | Some o -> o
  | None -> Alcotest.fail "coordinator never completed"

let test_sim_cluster_all_variants () =
  List.iter
    (fun variant ->
      let o = run_sim_cluster (cluster_config variant) ~users:12 in
      Alcotest.(check (option string)) "no abort" None o.NodeSim.cluster_abort;
      Alcotest.(check int) "all delivered" 12 (List.length o.NodeSim.delivered);
      Alcotest.(check bool) "matches single-process reference" true o.NodeSim.matched)
    [ Config.Basic; Config.Nizk; Config.Trap ]

let test_sim_cluster_deterministic () =
  let o1 = run_sim_cluster (cluster_config Config.Nizk) ~users:10 in
  let o2 = run_sim_cluster (cluster_config Config.Nizk) ~users:10 in
  Alcotest.(check bool) "run 1 matched" true o1.NodeSim.matched;
  (* Identical seeds replay bit-identically: same plaintexts in the same
     exit order, not just the same set. *)
  Alcotest.(check (list string)) "delivery order replays" o1.NodeSim.delivered
    o2.NodeSim.delivered

(* A node that receives unparseable bytes drops them, counts them, and
   keeps running — line noise is not evidence of misbehaviour (§4.4
   aborts are reserved for failed proofs), and a crash would turn one
   corrupt frame into a dead server. *)
let test_sim_node_survives_bad_frame () =
  let e = Engine.create () in
  let net = Net.create e in
  let machines =
    Array.init 2 (fun id -> Machine.create e ~id ~cores:4 ~bandwidth:1e9 ~cluster:0)
  in
  let fleet = SimT.fleet e net ~machines in
  let config = cluster_config Config.Nizk in
  let obs = Atom_obs.Ctx.create () in
  Engine.spawn e (fun () ->
      NodeSim.run_node ~obs fleet.(0) ~config ~node_id:0 ~coord:1 ~recv_timeout:1.0
        ~max_idle:60 ());
  let got = ref None in
  Engine.spawn e (fun () ->
      ignore (SimT.send fleet.(1) ~dst:0 "this is not a frame");
      ignore (SimT.send fleet.(1) ~dst:0 (Ctrl.encode Ctrl.Shutdown));
      match SimT.recv fleet.(1) ~timeout:60.0 with
      | Ok (0, frame) -> got := Ctrl.decode frame
      | _ -> ());
  ignore (Engine.run e);
  (match !got with
  | Some (Ctrl.Abort { detail; _ }) -> Alcotest.failf "node aborted on garbage: %s" detail
  | _ -> ());
  Alcotest.(check (float 0.))
    "bad frame counted" 1.0
    (Atom_obs.Metrics.counter_value (Atom_obs.Ctx.metrics obs) "node.bad_frames")

(* ---- Typed transport errors on real TCP ---- *)

(* All four [Transport.error] cases, plus recovery after [Closed] via a
   peer restart on the same port and an explicit [reset_peer]. *)
let test_tcp_typed_errors () =
  let a = TcpT.create ~node_id:0 ~send_timeout:1.0 ~max_retries:2 ~retry_backoff:0.05 () in
  let b = TcpT.create ~node_id:1 () in
  let b_port = TcpT.port b in
  TcpT.add_peer a ~node_id:1 ~host:"127.0.0.1" ~port:b_port;
  let f = Ctrl.encode (Ctrl.Ack { token = 5 }) in
  (* Unknown_peer: never registered. *)
  (match TcpT.send a ~dst:42 f with
  | Error (Atom_rpc.Transport.Unknown_peer 42) -> ()
  | r ->
      Alcotest.failf "unknown peer: %s"
        (match r with Ok () -> "accepted" | Error e -> Atom_rpc.Transport.error_to_string e));
  (* Timeout: nothing inbound. *)
  (match TcpT.recv a ~timeout:0.05 with
  | Error Atom_rpc.Transport.Timeout -> ()
  | r ->
      Alcotest.failf "empty recv: %s"
        (match r with Ok _ -> "delivered" | Error e -> Atom_rpc.Transport.error_to_string e));
  (* Send_failed: the peer is dead (listener closed), and the bounded
     reconnect budget turns that into a typed failure, not a hang. *)
  Alcotest.(check bool) "send while up" true (TcpT.send a ~dst:1 f = Ok ());
  (match TcpT.recv b ~timeout:5.0 with
  | Ok (0, _) -> ()
  | _ -> Alcotest.fail "frame while up");
  TcpT.close b;
  TcpT.reset_peer a ~dst:1;
  (match TcpT.send a ~dst:1 f with
  | Error (Atom_rpc.Transport.Send_failed { dst = 1; attempts; _ }) ->
      Alcotest.(check bool) "attempts bounded" true (attempts >= 1 && attempts <= 3)
  | r ->
      Alcotest.failf "dead peer send: %s"
        (match r with Ok () -> "accepted" | Error e -> Atom_rpc.Transport.error_to_string e));
  (* Recovery: the peer restarts on the same port; the pooled connection
     was already torn down, so the next send transparently reconnects. *)
  let b' = TcpT.create ~node_id:1 ~port:b_port () in
  TcpT.reset_peer a ~dst:1;
  Alcotest.(check bool) "send after restart" true (TcpT.send a ~dst:1 f = Ok ());
  (match TcpT.recv b' ~timeout:5.0 with
  | Ok (src, frame) ->
      Alcotest.(check int) "src after restart" 0 src;
      Alcotest.(check string) "frame after restart" f frame
  | Error e -> Alcotest.failf "recv after restart: %s" (Atom_rpc.Transport.error_to_string e));
  TcpT.close b';
  (* Closed: the local endpoint is gone. *)
  TcpT.close a;
  (match TcpT.send a ~dst:1 f with
  | Error Atom_rpc.Transport.Closed -> ()
  | r ->
      Alcotest.failf "closed send: %s"
        (match r with Ok () -> "accepted" | Error e -> Atom_rpc.Transport.error_to_string e));
  match TcpT.recv a ~timeout:0.05 with
  | Error Atom_rpc.Transport.Closed -> ()
  | r ->
      Alcotest.failf "closed recv: %s"
        (match r with Ok _ -> "delivered" | Error e -> Atom_rpc.Transport.error_to_string e)

(* ---- Chaos transport ---- *)

module ChaosSpec = Atom_rpc.Chaos_transport
module ChaosTcp = Atom_rpc.Chaos_transport.Make (TcpT.Check)
module NodeChaosTcp = Atom_rpc.Node.Make (G) (ChaosTcp.Check)

let test_chaos_spec_roundtrip () =
  let spec =
    {
      ChaosSpec.seed = 7;
      drop = 0.02;
      corrupt = 0.01;
      delay = 0.1;
      delay_s = 0.25;
      dup = 0.05;
      reset_every = 40;
      after = 1.5;
      partitions =
        [ { ChaosSpec.from_t = 1.; to_t = 3.5; sides = [ [ 0; 1 ]; [ 2; 3 ] ] } ];
    }
  in
  (match ChaosSpec.spec_of_string (ChaosSpec.spec_to_string spec) with
  | Ok s -> Alcotest.(check bool) "roundtrip" true (s = spec)
  | Error m -> Alcotest.failf "roundtrip rejected: %s" m);
  (match ChaosSpec.spec_of_string "" with
  | Ok s -> Alcotest.(check bool) "empty spec is none" true (ChaosSpec.is_none s)
  | Error m -> Alcotest.failf "empty rejected: %s" m);
  (match ChaosSpec.spec_of_string "nonsense=1" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown field accepted");
  match ChaosSpec.spec_of_string "drop=high" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad value accepted"

(* The decision stream is a pure function of (seed, endpoint, send seq):
   two identical runs drop the same messages and deliver the rest in the
   same order. *)
let test_chaos_deterministic_drops () =
  let run () =
    let a = TcpT.create ~node_id:0 () in
    let b = TcpT.create ~node_id:1 () in
    TcpT.add_peer a ~node_id:1 ~host:"127.0.0.1" ~port:(TcpT.port b);
    let obs = Atom_obs.Ctx.create () in
    let spec =
      match ChaosSpec.spec_of_string "seed=42;drop=0.5" with
      | Ok s -> s
      | Error m -> Alcotest.failf "spec: %s" m
    in
    let ca = ChaosTcp.wrap ~obs ~now:(fun () -> 1.0) spec a in
    for i = 0 to 99 do
      match ChaosTcp.send ca ~dst:1 (Ctrl.encode (Ctrl.Ack { token = i })) with
      | Ok () -> ()
      | Error e -> Alcotest.failf "chaos send: %s" (Atom_rpc.Transport.error_to_string e)
    done;
    let got = ref [] in
    let quiet = ref 0 in
    while !quiet < 3 do
      match TcpT.recv b ~timeout:0.2 with
      | Ok (_, frame) -> (
          quiet := 0;
          match Ctrl.decode frame with
          | Some (Ctrl.Ack { token }) -> got := token :: !got
          | _ -> ())
      | Error _ -> incr quiet
    done;
    ChaosTcp.close ca;
    TcpT.close b;
    (List.rev !got, Atom_obs.Metrics.counter_value (Atom_obs.Ctx.metrics obs) "chaos.drops")
  in
  let got1, drops1 = run () in
  let got2, drops2 = run () in
  Alcotest.(check bool) "some dropped" true (drops1 > 0.);
  Alcotest.(check bool) "some delivered" true (got1 <> []);
  Alcotest.(check int) "drops + delivered = sends" 100 (List.length got1 + int_of_float drops1);
  Alcotest.(check (list int)) "delivery replays" got1 got2;
  Alcotest.(check (float 0.)) "drop count replays" drops1 drops2

(* Partition windows: silent loss inside the window, delivery outside. *)
let test_chaos_partition_window () =
  let a = TcpT.create ~node_id:0 () in
  let b = TcpT.create ~node_id:1 () in
  TcpT.add_peer a ~node_id:1 ~host:"127.0.0.1" ~port:(TcpT.port b);
  let obs = Atom_obs.Ctx.create () in
  let spec =
    match ChaosSpec.spec_of_string "partition=1:10:0|1" with
    | Ok s -> s
    | Error m -> Alcotest.failf "spec: %s" m
  in
  let clock = ref 5.0 in
  let ca = ChaosTcp.wrap ~obs ~now:(fun () -> !clock) spec a in
  let f = Ctrl.encode (Ctrl.Ack { token = 9 }) in
  for _ = 1 to 5 do
    Alcotest.(check bool) "partitioned send looks ok" true (ChaosTcp.send ca ~dst:1 f = Ok ())
  done;
  (match TcpT.recv b ~timeout:0.2 with
  | Error Atom_rpc.Transport.Timeout -> ()
  | _ -> Alcotest.fail "frame crossed the partition");
  Alcotest.(check (float 0.))
    "partition drops counted" 5.0
    (Atom_obs.Metrics.counter_value (Atom_obs.Ctx.metrics obs) "chaos.partition_drops");
  clock := 20.0;
  Alcotest.(check bool) "healed send" true (ChaosTcp.send ca ~dst:1 f = Ok ());
  (match TcpT.recv b ~timeout:5.0 with
  | Ok (0, frame) -> Alcotest.(check string) "healed frame" f frame
  | _ -> Alcotest.fail "frame lost after heal");
  ChaosTcp.close ca;
  TcpT.close b

(* ---- The same runtime over real TCP, one thread per server ---- *)

let test_tcp_threaded_cluster () =
  let config =
    {
      (Config.tiny ~variant:Config.Basic ~seed:7 ()) with
      Config.n_servers = 4;
      n_groups = 2;
      group_size = 2;
      h = 1;
      topology = Config.Square 2;
    }
  in
  let n = config.Config.n_servers in
  let coord = n in
  let ts = Array.init (n + 1) (fun node_id -> TcpT.create ~node_id ()) in
  (* Full mesh up-front; the Join/Peers/Ack bring-up belongs to the CLI
     launcher, not the runtime under test. *)
  Array.iteri
    (fun i t ->
      Array.iteri
        (fun j u ->
          if i <> j then TcpT.add_peer t ~node_id:j ~host:"127.0.0.1" ~port:(TcpT.port u))
        ts)
    ts;
  (* Every thread runs over the SAME group instance (module [G] at the top
     of this file): Modarith contexts hand out per-domain scratch via DLS
     with a per-op checkout, so concurrent threads on one shared context
     are safe — the per-thread instances the seed needed are gone. *)
  let threads =
    List.init n (fun sid ->
        Thread.create
          (fun () ->
            NodeTcp.run_node ts.(sid) ~config ~node_id:sid ~coord ~recv_timeout:0.2
              ~max_idle:150 ())
          ())
  in
  let outcome =
    NodeTcp.run_coordinator ts.(coord) ~config ~users:6 ~recv_timeout:0.2 ~max_idle:150 ()
  in
  List.iter Thread.join threads;
  Array.iter TcpT.close ts;
  Alcotest.(check (option string)) "no abort" None outcome.NodeTcp.cluster_abort;
  Alcotest.(check bool) "tcp cluster matches reference" true outcome.NodeTcp.matched

(* ---- wall-clock tracing + live stats over the same TCP runtime ----

   Every process gets its own tracing context and the shared wall clock;
   the coordinator harvests per-node atom-metrics/1 snapshots over
   Stats_request before shutdown. Two invariants under test: every live
   node answers with a strictly-decodable snapshot carrying its trace
   buffer, and each node's event-loop phase spans tile its round
   wall-time — the single-threaded loop is always in exactly one phase,
   so closed tid-0 spans are contiguous with no overlap. *)
let test_tcp_traced_cluster_stats () =
  let config =
    {
      (Config.tiny ~variant:Config.Basic ~seed:7 ()) with
      Config.n_servers = 4;
      n_groups = 2;
      group_size = 2;
      h = 1;
      topology = Config.Square 2;
    }
  in
  let n = config.Config.n_servers in
  let coord = n in
  let started = Unix.gettimeofday () in
  let clock () = Unix.gettimeofday () -. started in
  let obss = Array.init (n + 1) (fun _ -> Atom_obs.Ctx.create ~tracing:true ()) in
  let ts = Array.init (n + 1) (fun node_id -> TcpT.create ~obs:obss.(node_id) ~node_id ()) in
  Array.iteri
    (fun i t ->
      Array.iteri
        (fun j u ->
          if i <> j then TcpT.add_peer t ~node_id:j ~host:"127.0.0.1" ~port:(TcpT.port u))
        ts)
    ts;
  let threads =
    List.init n (fun sid ->
        Thread.create
          (fun () ->
            NodeTcp.run_node ~obs:obss.(sid) ~clock ts.(sid) ~config ~node_id:sid ~coord
              ~recv_timeout:0.2 ~max_idle:150 ())
          ())
  in
  let outcome =
    NodeTcp.run_coordinator ~obs:obss.(coord) ~clock ts.(coord) ~config ~users:6
      ~recv_timeout:0.2 ~max_idle:150 ~collect_stats:true ()
  in
  List.iter Thread.join threads;
  Array.iter TcpT.close ts;
  Alcotest.(check (option string)) "no abort" None outcome.NodeTcp.cluster_abort;
  Alcotest.(check bool) "matches reference" true outcome.NodeTcp.matched;
  Alcotest.(check int) "one snapshot per node" n (List.length outcome.NodeTcp.node_snapshots);
  let module Snapshot = Atom_obs.Snapshot in
  let module Trace = Atom_obs.Trace in
  List.iter
    (fun (sid, json) ->
      match Snapshot.of_json json with
      | Error e -> Alcotest.failf "node %d snapshot rejected: %s" sid e
      | Ok snap ->
          Alcotest.(check int) (Printf.sprintf "node %d id" sid) sid snap.Snapshot.node_id;
          (* The Stats_request round trip happened mid-recv-loop, so the
             node is inside an open phase at snapshot time. *)
          Alcotest.(check bool)
            (Printf.sprintf "node %d has an open tid-0 phase" sid)
            true
            (List.exists (fun os -> os.Snapshot.os_tid = 0) snap.Snapshot.open_spans);
          (* Closed tid-0 phase spans tile the loop's wall-time exactly:
             emitted in close order, each segment starts where the
             previous one ended. *)
          let segs =
            List.filter
              (fun (e : Trace.event) ->
                e.Trace.ph = 'X' && e.Trace.tid = 0 && e.Trace.cat = Trace.Phase.cat)
              snap.Snapshot.events
          in
          Alcotest.(check bool)
            (Printf.sprintf "node %d recorded phases" sid)
            true (segs <> []);
          let eps = 1e-6 in
          ignore
            (List.fold_left
               (fun prev_end (e : Trace.event) ->
                 (match prev_end with
                 | Some pe ->
                     if Float.abs (e.Trace.ts -. pe) > eps then
                       Alcotest.failf "node %d: phase gap/overlap at %.6f (prev end %.6f)"
                         sid e.Trace.ts pe
                 | None -> ());
                 Some (e.Trace.ts +. e.Trace.dur))
               None segs))
    outcome.NodeTcp.node_snapshots

(* ---- §4.5 recovery over TCP: kill a member mid-round ---- *)

(* The victim is picked from the round's actual group formation (sampling
   is per-group, so an arbitrary server id may hold no role at all) and
   crashes before the round starts: every one of its pipeline steps is
   outstanding, so the coordinator's sweep must detect the death, the
   fleet must re-route the dead member's roles (buddy share recovery),
   and the round must still match the reference. Chaos delays stay on to
   exercise recovery interleaved with held frames. *)
let test_tcp_cluster_kill_recovery () =
  let config =
    {
      (Config.tiny ~variant:Config.Basic ~seed:7 ()) with
      Config.n_servers = 4;
      n_groups = 2;
      group_size = 2;
      h = 1;
      topology = Config.Square 2;
    }
  in
  let n = config.Config.n_servers in
  let coord = n in
  (* Mirror [Pr.setup]'s formation to find a server that holds a role. *)
  let victim =
    let beacon = Beacon.create ~seed:config.Config.seed in
    let formation =
      Group_formation.form beacon ~round:0 ~n_servers:n
        ~n_groups:config.Config.n_groups ~group_size:config.Config.group_size ()
    in
    formation.Group_formation.groups.(0).Group_formation.members.(0)
  in
  let obs = Atom_obs.Ctx.create () in
  let ts =
    Array.init (n + 1) (fun node_id ->
        TcpT.create ~obs ~node_id ~send_timeout:1.0 ~max_retries:2 ~retry_backoff:0.05 ())
  in
  Array.iteri
    (fun i t ->
      Array.iteri
        (fun j u ->
          if i <> j then TcpT.add_peer t ~node_id:j ~host:"127.0.0.1" ~port:(TcpT.port u))
        ts)
    ts;
  let spec =
    match ChaosSpec.spec_of_string "delay=0.8;delay_s=0.2;seed=5" with
    | Ok s -> s
    | Error m -> Alcotest.failf "spec: %s" m
  in
  let cts = Array.init n (fun sid -> ChaosTcp.wrap ~obs spec ts.(sid)) in
  let threads =
    List.init n (fun sid ->
        Thread.create
          (fun () ->
            NodeChaosTcp.run_node ~obs cts.(sid) ~config ~node_id:sid ~coord ~recv_timeout:0.2
              ~max_idle:150 ())
          ())
  in
  (* Crash the victim before the round starts: deterministic, and the
     replacement must reconstruct *all* of its pipeline work. *)
  TcpT.close ts.(victim);
  let outcome =
    NodeTcp.run_coordinator ~obs ts.(coord) ~config ~users:8 ~recv_timeout:0.2 ~max_idle:150
      ~stall_strikes:4 ()
  in
  List.iter Thread.join threads;
  Array.iter TcpT.close ts;
  Alcotest.(check (option string)) "no abort" None outcome.NodeTcp.cluster_abort;
  Alcotest.(check bool) "kill was detected" true
    (List.mem victim outcome.NodeTcp.failed_nodes);
  Alcotest.(check bool) "recovery sweeps ran" true (outcome.NodeTcp.recovery_rounds >= 1);
  Alcotest.(check bool) "buddy share recovery ran" true
    (Atom_obs.Metrics.counter_value (Atom_obs.Ctx.metrics obs) "node.recoveries" >= 1.0);
  Alcotest.(check bool) "matches reference despite kill" true outcome.NodeTcp.matched

(* ---- malformed-frame injection at the TCP recv path, mid-round ----

   The wire fuzz vocabulary (CRC-corrupt bodies, raw garbage that desyncs
   the stream) sprayed at every node while a real round runs: every
   protocol state must reject-and-survive — frames counted, connections
   for desynced streams dropped, round unharmed. *)
let test_tcp_cluster_survives_frame_injection () =
  let config =
    {
      (Config.tiny ~variant:Config.Basic ~seed:7 ()) with
      Config.n_servers = 4;
      n_groups = 2;
      group_size = 2;
      h = 1;
      topology = Config.Square 2;
    }
  in
  let n = config.Config.n_servers in
  let coord = n in
  let obs = Atom_obs.Ctx.create () in
  let ts = Array.init (n + 1) (fun node_id -> TcpT.create ~obs ~node_id ()) in
  Array.iteri
    (fun i t ->
      Array.iteri
        (fun j u ->
          if i <> j then TcpT.add_peer t ~node_id:j ~host:"127.0.0.1" ~port:(TcpT.port u))
        ts)
    ts;
  (* The attacker is just another TCP endpoint that knows the ports. *)
  let attacker = TcpT.create ~node_id:99 ~send_timeout:0.5 ~max_retries:1 ~retry_backoff:0.02 () in
  for sid = 0 to n - 1 do
    TcpT.add_peer attacker ~node_id:sid ~host:"127.0.0.1" ~port:(TcpT.port ts.(sid))
  done;
  let stop = Atomic.make false in
  let corrupt_frame i =
    (* Valid header and length over a CRC-corrupt body: passes stream
       framing, must die in the strict decoders. *)
    let f = Ctrl.encode (Ctrl.Barrier { iter = i }) in
    let b = Bytes.of_string f in
    let last = Bytes.length b - 1 in
    Bytes.set b last (Char.chr (Char.code (Bytes.get b last) lxor 0x40));
    Bytes.to_string b
  in
  let sprayer =
    Thread.create
      (fun () ->
        let i = ref 0 in
        while not (Atomic.get stop) do
          incr i;
          for sid = 0 to n - 1 do
            ignore (TcpT.send attacker ~dst:sid (corrupt_frame !i));
            (* Every few frames, raw garbage: desyncs that node's reader
               for the attacker's connection, which must only cost the
               attacker its connection. *)
            if !i mod 5 = 0 then ignore (TcpT.send attacker ~dst:sid "raw garbage, no header")
          done;
          Thread.delay 0.002
        done)
      ()
  in
  let threads =
    List.init n (fun sid ->
        Thread.create
          (fun () ->
            NodeTcp.run_node ~obs ts.(sid) ~config ~node_id:sid ~coord ~recv_timeout:0.2
              ~max_idle:150 ())
          ())
  in
  let outcome =
    NodeTcp.run_coordinator ~obs ts.(coord) ~config ~users:8 ~recv_timeout:0.2 ~max_idle:150 ()
  in
  Atomic.set stop true;
  Thread.join sprayer;
  List.iter Thread.join threads;
  TcpT.close attacker;
  Array.iter TcpT.close ts;
  Alcotest.(check (option string)) "no abort" None outcome.NodeTcp.cluster_abort;
  Alcotest.(check bool) "corrupt frames were seen and dropped" true
    (Atom_obs.Metrics.counter_value (Atom_obs.Ctx.metrics obs) "node.bad_frames" >= 1.0);
  Alcotest.(check bool) "matches reference under injection" true outcome.NodeTcp.matched

let suite =
  let q t = QCheck_alcotest.to_alcotest t in
  ( "rpc",
    [
      Alcotest.test_case "tcp loopback" `Quick test_tcp_loopback;
      Alcotest.test_case "tcp typed errors" `Quick test_tcp_typed_errors;
      Alcotest.test_case "reenc blob roundtrip" `Quick test_reenc_blob_roundtrip;
      Alcotest.test_case "chaos spec roundtrip" `Quick test_chaos_spec_roundtrip;
      Alcotest.test_case "chaos deterministic drops" `Quick test_chaos_deterministic_drops;
      Alcotest.test_case "chaos partition window" `Quick test_chaos_partition_window;
      Alcotest.test_case "sim cluster all variants" `Quick test_sim_cluster_all_variants;
      Alcotest.test_case "sim cluster deterministic" `Quick test_sim_cluster_deterministic;
      Alcotest.test_case "node survives bad frame" `Quick test_sim_node_survives_bad_frame;
      Alcotest.test_case "tcp threaded cluster" `Quick test_tcp_threaded_cluster;
      Alcotest.test_case "tcp traced cluster stats" `Quick test_tcp_traced_cluster_stats;
      Alcotest.test_case "tcp cluster kill recovery" `Quick test_tcp_cluster_kill_recovery;
      Alcotest.test_case "tcp cluster frame injection" `Quick
        test_tcp_cluster_survives_frame_injection;
      q prop_reenc_blob_total;
    ] )
