(* The RPC layer: transport implementations and the multi-process node
   runtime.

   Three angles:
   - the TCP transport's socket mechanics on loopback (framed delivery,
     ordering, self-send, timeouts, unknown peers);
   - a full cluster round over the simulator transport, inside engine
     processes — deterministic, so two runs must replay bit-identically
     and match the single-process reference for every variant;
   - the same node runtime over real TCP, with each server on its own
     thread, pinning both transports to the same semantics. *)

module G = (val Atom_group.Registry.zp_test ())
module SimT = Atom_rpc.Sim_transport
module TcpT = Atom_rpc.Tcp_transport
module NodeSim = Atom_rpc.Node.Make (G) (SimT.Check)
module NodeTcp = Atom_rpc.Node.Make (G) (TcpT.Check)
module Pr = NodeSim.Pr
module El = Pr.El
module Ctrl = Atom_wire.Control
open Atom_core
open Atom_sim

(* Both implementations really do satisfy the transport signature. *)
module _ : Atom_rpc.Transport.S = SimT.Check
module _ : Atom_rpc.Transport.S = TcpT.Check

(* ---- TCP transport mechanics ---- *)

let test_tcp_loopback () =
  let a = TcpT.create ~node_id:0 () in
  let b = TcpT.create ~node_id:1 () in
  TcpT.add_peer a ~node_id:1 ~host:"127.0.0.1" ~port:(TcpT.port b);
  TcpT.add_peer b ~node_id:0 ~host:"127.0.0.1" ~port:(TcpT.port a);
  Alcotest.(check int) "self id" 0 (TcpT.self a);
  Alcotest.(check (list int)) "peer ids" [ 1 ] (TcpT.peer_ids a);
  let f1 = Ctrl.encode (Ctrl.Ack { token = 41 }) in
  let f2 = Ctrl.encode (Ctrl.Barrier { iter = 7 }) in
  Alcotest.(check bool) "send 1" true (TcpT.send a ~dst:1 f1 = Ok ());
  Alcotest.(check bool) "send 2" true (TcpT.send a ~dst:1 f2 = Ok ());
  (* Same-pair ordering holds: one pooled stream per direction. *)
  (match TcpT.recv b ~timeout:5.0 with
  | Ok (src, frame) ->
      Alcotest.(check int) "src" 0 src;
      Alcotest.(check string) "frame 1 intact" f1 frame
  | Error e -> Alcotest.failf "first frame: %s" (Atom_rpc.Transport.error_to_string e));
  (match TcpT.recv b ~timeout:5.0 with
  | Ok (_, frame) -> Alcotest.(check string) "frame 2 in order" f2 frame
  | Error e -> Alcotest.failf "second frame: %s" (Atom_rpc.Transport.error_to_string e));
  (* Self-send loops through the inbox without a socket. *)
  Alcotest.(check bool) "self-send accepted" true (TcpT.send b ~dst:1 f1 = Ok ());
  (match TcpT.recv b ~timeout:5.0 with
  | Ok (src, frame) ->
      Alcotest.(check int) "self src" 1 src;
      Alcotest.(check string) "self frame" f1 frame
  | Error e -> Alcotest.failf "self-send: %s" (Atom_rpc.Transport.error_to_string e));
  (* Failures are typed, and shared with the simulator transport. *)
  (match TcpT.send a ~dst:99 f1 with
  | Error (Atom_rpc.Transport.Unknown_peer 99) -> ()
  | Ok () -> Alcotest.fail "unknown peer accepted"
  | Error e -> Alcotest.failf "unknown peer: %s" (Atom_rpc.Transport.error_to_string e));
  (match TcpT.recv a ~timeout:0.05 with
  | Error Atom_rpc.Transport.Timeout -> ()
  | Ok _ -> Alcotest.fail "empty recv delivered"
  | Error e -> Alcotest.failf "empty recv: %s" (Atom_rpc.Transport.error_to_string e));
  TcpT.close a;
  (* A closed endpoint reports [Closed], not a timeout. *)
  (match TcpT.send a ~dst:1 f1 with
  | Error Atom_rpc.Transport.Closed -> ()
  | r ->
      Alcotest.failf "closed send: %s"
        (match r with Ok () -> "accepted" | Error e -> Atom_rpc.Transport.error_to_string e));
  TcpT.close b

(* ---- ReEnc proof blobs (the one node-layer codec) ---- *)

let test_reenc_blob_roundtrip () =
  let r = Atom_util.Rng.create 0x99 in
  let kp = El.keygen r in
  let v = fst (El.enc_vec r kp.El.pk [| G.random r; G.random r |]) in
  let _, pis =
    Pr.P.Reenc_proof.reenc_vec_with_proof r ~share:(G.Scalar.random r)
      ~coeff:(G.Scalar.random r) ~next_pk:None ~context:"blob" v
  in
  let blob = NodeSim.reenc_proofs_to_blob pis in
  (match NodeSim.reenc_proofs_of_blob blob with
  | None -> Alcotest.fail "blob decode failed"
  | Some pis' -> Alcotest.(check int) "proof count" (Array.length pis) (Array.length pis'));
  for i = 0 to String.length blob - 1 do
    if NodeSim.reenc_proofs_of_blob (String.sub blob 0 i) <> None then
      Alcotest.failf "blob truncation at byte %d accepted" i
  done

let prop_reenc_blob_total =
  QCheck2.Test.make ~name:"reenc_proofs_of_blob never raises" ~count:300
    QCheck2.Gen.(string_size ~gen:(map Char.chr (int_bound 255)) (int_bound 200))
    (fun s -> match NodeSim.reenc_proofs_of_blob s with Some _ | None -> true)

(* ---- Cluster rounds over the simulator transport ---- *)

(* The CI smoke shape: 8 servers, 4 groups of 2 with h = 1 (quorum 2),
   3 square iterations. *)
let cluster_config variant =
  {
    (Config.tiny ~variant ~seed:5 ()) with
    Config.n_servers = 8;
    n_groups = 4;
    group_size = 2;
    h = 1;
    topology = Config.Square 3;
  }

let run_sim_cluster (config : Config.t) ~(users : int) : NodeSim.cluster_outcome =
  let e = Engine.create () in
  let net = Net.create e in
  let n = config.Config.n_servers in
  let coord = n in
  let machines =
    Array.init (n + 1) (fun id -> Machine.create e ~id ~cores:4 ~bandwidth:1e9 ~cluster:0)
  in
  let fleet = SimT.fleet e net ~machines in
  for sid = 0 to n - 1 do
    Engine.spawn e (fun () ->
        NodeSim.run_node fleet.(sid) ~config ~node_id:sid ~coord ~recv_timeout:1.0
          ~max_idle:120 ())
  done;
  let outcome = ref None in
  Engine.spawn e (fun () ->
      outcome :=
        Some (NodeSim.run_coordinator fleet.(coord) ~config ~users ~recv_timeout:1.0 ~max_idle:120 ()));
  ignore (Engine.run e);
  match !outcome with
  | Some o -> o
  | None -> Alcotest.fail "coordinator never completed"

let test_sim_cluster_all_variants () =
  List.iter
    (fun variant ->
      let o = run_sim_cluster (cluster_config variant) ~users:12 in
      Alcotest.(check (option string)) "no abort" None o.NodeSim.cluster_abort;
      Alcotest.(check int) "all delivered" 12 (List.length o.NodeSim.delivered);
      Alcotest.(check bool) "matches single-process reference" true o.NodeSim.matched)
    [ Config.Basic; Config.Nizk; Config.Trap ]

let test_sim_cluster_deterministic () =
  let o1 = run_sim_cluster (cluster_config Config.Nizk) ~users:10 in
  let o2 = run_sim_cluster (cluster_config Config.Nizk) ~users:10 in
  Alcotest.(check bool) "run 1 matched" true o1.NodeSim.matched;
  (* Identical seeds replay bit-identically: same plaintexts in the same
     exit order, not just the same set. *)
  Alcotest.(check (list string)) "delivery order replays" o1.NodeSim.delivered
    o2.NodeSim.delivered

(* A node that receives unparseable bytes aborts the round loudly (with
   the bad-frame code) rather than wedging or crashing. *)
let test_sim_node_rejects_bad_frame () =
  let e = Engine.create () in
  let net = Net.create e in
  let machines =
    Array.init 2 (fun id -> Machine.create e ~id ~cores:4 ~bandwidth:1e9 ~cluster:0)
  in
  let fleet = SimT.fleet e net ~machines in
  let config = cluster_config Config.Nizk in
  Engine.spawn e (fun () ->
      NodeSim.run_node fleet.(0) ~config ~node_id:0 ~coord:1 ~recv_timeout:1.0 ~max_idle:60 ());
  let got = ref None in
  Engine.spawn e (fun () ->
      ignore (SimT.send fleet.(1) ~dst:0 "this is not a frame");
      match SimT.recv fleet.(1) ~timeout:60.0 with
      | Ok (0, frame) -> got := Ctrl.decode frame
      | _ -> ());
  ignore (Engine.run e);
  match !got with
  | Some (Ctrl.Abort { code; _ }) ->
      Alcotest.(check int) "bad-frame abort code" Ctrl.abort_bad_frame code
  | _ -> Alcotest.fail "node did not abort on garbage"

(* ---- The same runtime over real TCP, one thread per server ---- *)

let test_tcp_threaded_cluster () =
  let config =
    {
      (Config.tiny ~variant:Config.Basic ~seed:7 ()) with
      Config.n_servers = 4;
      n_groups = 2;
      group_size = 2;
      h = 1;
      topology = Config.Square 2;
    }
  in
  let n = config.Config.n_servers in
  let coord = n in
  let ts = Array.init (n + 1) (fun node_id -> TcpT.create ~node_id ()) in
  (* Full mesh up-front; the Join/Peers/Ack bring-up belongs to the CLI
     launcher, not the runtime under test. *)
  Array.iteri
    (fun i t ->
      Array.iteri
        (fun j u ->
          if i <> j then TcpT.add_peer t ~node_id:j ~host:"127.0.0.1" ~port:(TcpT.port u))
        ts)
    ts;
  (* Every thread runs over the SAME group instance (module [G] at the top
     of this file): Modarith contexts hand out per-domain scratch via DLS
     with a per-op checkout, so concurrent threads on one shared context
     are safe — the per-thread instances the seed needed are gone. *)
  let threads =
    List.init n (fun sid ->
        Thread.create
          (fun () ->
            NodeTcp.run_node ts.(sid) ~config ~node_id:sid ~coord ~recv_timeout:0.2
              ~max_idle:150 ())
          ())
  in
  let outcome =
    NodeTcp.run_coordinator ts.(coord) ~config ~users:6 ~recv_timeout:0.2 ~max_idle:150 ()
  in
  List.iter Thread.join threads;
  Array.iter TcpT.close ts;
  Alcotest.(check (option string)) "no abort" None outcome.NodeTcp.cluster_abort;
  Alcotest.(check bool) "tcp cluster matches reference" true outcome.NodeTcp.matched

let suite =
  let q t = QCheck_alcotest.to_alcotest t in
  ( "rpc",
    [
      Alcotest.test_case "tcp loopback" `Quick test_tcp_loopback;
      Alcotest.test_case "reenc blob roundtrip" `Quick test_reenc_blob_roundtrip;
      Alcotest.test_case "sim cluster all variants" `Quick test_sim_cluster_all_variants;
      Alcotest.test_case "sim cluster deterministic" `Quick test_sim_cluster_deterministic;
      Alcotest.test_case "node aborts on bad frame" `Quick test_sim_node_rejects_bad_frame;
      Alcotest.test_case "tcp threaded cluster" `Quick test_tcp_threaded_cluster;
      q prop_reenc_blob_total;
    ] )
