(* Adversarial soundness of the batched membership API ([check_batch] /
   [find_non_member] / [Unverified.discharge_batch]) across every group
   backend, and fuzz totality of the policy-driven codec decode path.

   The attacks are the ones the wire layer must survive: a hostile peer
   plants a single structurally-sound non-member element at a random index
   of a random-size batch. Every validation policy must reject the frame,
   and the deferred-discharge path must name the planted index so the
   abort can blame the right element. *)

module Pool = Atom_exec.Pool
module Validation = Atom_wire.Validation
module Frame = Atom_wire.Frame
module Rng = Atom_util.Rng
open Atom_nat

let rng () = Rng.create 0x5a11

let with_pool (domains : int) (f : Pool.t -> 'a) : 'a =
  let p = Pool.create ~domains () in
  Fun.protect ~finally:(fun () -> Pool.shutdown p) (fun () -> f p)

(* ---- crafting non-members ----

   In the QR⁺ representation a non-member encoding is any v with
   q < v < p: it passes the structural range check (nonzero, below p) but
   fails the canonical-range membership check, exactly the gap the
   discharge must close. Sampled uniformly so every trial plants a
   different value. *)

let zp_bad_bytes (params : Atom_group.Zp.params) ~(len : int) (r : Rng.t) : string =
  let gap = Nat.sub (Nat.sub params.Atom_group.Zp.p params.Atom_group.Zp.q) Nat.one in
  let v =
    Nat.add params.Atom_group.Zp.q (Nat.add Nat.one (Nat.random_below r gap))
  in
  Nat.to_bytes_be ~length:len v

(* For P-256 there is no structurally-sound off-curve wire encoding (the
   compressed decode solves the curve equation), so the adversarial value
   is a hand-built affine point just off the curve: (x, y+1) fails the
   equation unless 2y + 1 = 0, which we retry away. *)
let p256_bad_point (r : Rng.t) : Atom_group.P256.t =
  let module P = Atom_group.P256 in
  let rec go () =
    match P.random r with
    | P.Inf -> go ()
    | P.Aff (x, y) ->
        let y' = Modarith.add P.fp y (Modarith.of_nat P.fp Nat.one) in
        let cand = P.Aff (x, y') in
        if P.on_curve cand then go () else cand
  in
  go ()

(* ---- zp backends: planted non-member at a random index ---- *)

let test_zp_planted (group : unit -> (module Atom_group.Group_intf.GROUP))
    (params : Atom_group.Zp.params) () =
  let module G = (val group ()) in
  let r = rng () in
  let unverified s =
    match G.Unverified.of_bytes s with
    | Some u -> u
    | None -> Alcotest.fail "structurally sound bytes rejected by Unverified.of_bytes"
  in
  for _trial = 1 to 25 do
    let n = 1 + Rng.int_below r 64 in
    let idx = Rng.int_below r n in
    let bad = zp_bad_bytes params ~len:G.element_bytes r in
    Alcotest.(check bool) "non-member rejected by of_bytes" true (G.of_bytes bad = None);
    let bad_u = unverified bad in
    Alcotest.(check bool) "non-member fails discharge" true
      (G.Unverified.discharge bad_u = None);
    let batch =
      Array.init n (fun i ->
          if i = idx then bad_u else unverified (G.to_bytes (G.random r)))
    in
    (match G.Unverified.discharge_batch batch with
    | Error i -> Alcotest.(check int) "discharge_batch names the planted index" idx i
    | Ok _ -> Alcotest.fail "discharge_batch accepted a planted non-member")
  done;
  (* Honest batches discharge to members check_batch accepts. *)
  let honest = Array.init 48 (fun _ -> G.random r) in
  (match G.Unverified.discharge_batch (Array.map (fun e -> unverified (G.to_bytes e)) honest) with
  | Ok els ->
      Alcotest.(check bool) "honest batch checks" true (G.check_batch els);
      Alcotest.(check bool) "no non-member found" true (G.find_non_member els = None)
  | Error i -> Alcotest.failf "honest batch failed discharge at %d" i);
  Alcotest.(check bool) "empty batch checks" true (G.check_batch [||])

(* The headline soundness case from the API contract: a single non-member
   hidden in a 1024-element batch must be caught — sequentially and over a
   pool (1024 is past the pooled-check threshold). *)
let test_zp_1024_batch () =
  let module G = (val Atom_group.Registry.zp_test ()) in
  let params = Atom_group.Zp.test_params () in
  let r = rng () in
  let n = 1024 in
  let idx = Rng.int_below r n in
  let bad = zp_bad_bytes params ~len:G.element_bytes r in
  let batch =
    Array.init n (fun i ->
        let s = if i = idx then bad else G.to_bytes (G.random r) in
        match G.Unverified.of_bytes s with
        | Some u -> u
        | None -> Alcotest.fail "structural decode rejected sound bytes")
  in
  with_pool 3 (fun pool ->
      (match G.Unverified.discharge_batch ~pool batch with
      | Error i -> Alcotest.(check int) "pooled discharge names the index" idx i
      | Ok _ -> Alcotest.fail "pooled discharge missed the non-member");
      match G.Unverified.discharge_batch batch with
      | Error i -> Alcotest.(check int) "sequential discharge names the index" idx i
      | Ok _ -> Alcotest.fail "sequential discharge missed the non-member");
  (* And the all-honest 1024 batch passes the pooled check_batch path. *)
  let honest = Array.init n (fun _ -> G.random r) in
  with_pool 3 (fun pool ->
      Alcotest.(check bool) "pooled check_batch accepts honest 1024" true
        (G.check_batch ~pool honest));
  Alcotest.(check bool) "sequential check_batch accepts honest 1024" true
    (G.check_batch honest)

(* ---- p256: off-curve point at a random index ---- *)

let test_p256_planted () =
  let module P = Atom_group.P256 in
  let r = rng () in
  (* P-256 point generation is costly in pure OCaml: draw a small pool of
     honest points and tile the batches from it. *)
  let honest = Array.init 8 (fun _ -> P.random r) in
  for _trial = 1 to 10 do
    let n = 1 + Rng.int_below r 64 in
    let idx = Rng.int_below r n in
    let bad = p256_bad_point r in
    (* Unlike zp, no wire encoding reaches an off-curve point (compressed
       decode solves the curve equation), so the adversarial surface is
       the in-memory batch API over hand-built points. *)
    Alcotest.(check bool) "off-curve point is not a member" false (P.is_member bad);
    Alcotest.(check bool) "off-curve encoding rejected by of_bytes" true
      (P.of_bytes (P.to_bytes bad) <> Some bad);
    let batch = Array.init n (fun i -> if i = idx then bad else honest.(i mod 8)) in
    Alcotest.(check bool) "check_batch rejects planted off-curve point" false
      (P.check_batch batch);
    Alcotest.(check bool) "find_non_member names the index" true
      (P.find_non_member batch = Some idx)
  done;
  let clean = Array.init 32 (fun i -> honest.(i mod 8)) in
  Alcotest.(check bool) "honest p256 batch checks" true (P.check_batch clean);
  Alcotest.(check bool) "no non-member in honest batch" true (P.find_non_member clean = None)

(* Every registry backend honors the batch API on honest input. *)
let test_registry_check_batch () =
  let r = rng () in
  List.iter
    (fun (name, make) ->
      let module G = (val (make () : (module Atom_group.Group_intf.GROUP))) in
      let seedn = if name = "p256" then 4 else 32 in
      let seeds = Array.init seedn (fun _ -> G.random r) in
      let batch = Array.init 32 (fun i -> seeds.(i mod seedn)) in
      Alcotest.(check bool) (name ^ " honest batch checks") true (G.check_batch batch);
      Alcotest.(check bool) (name ^ " empty batch checks") true (G.check_batch [||]);
      Alcotest.(check bool)
        (name ^ " roundtrip through Unverified")
        true
        (match G.Unverified.discharge_batch (Array.map (fun e -> Option.get (G.Unverified.of_bytes (G.to_bytes e))) batch) with
        | Ok els -> Array.for_all2 G.equal els batch
        | Error _ -> false))
    Atom_group.Registry.available

(* ---- codec level: a planted element inside a Batch frame ---- *)

module G = (val Atom_group.Registry.zp_test ())
module El = Atom_elgamal.Elgamal.Make (G)
module WC = Atom_wire.Codec.Make (G) (El)

(* Walk a Batch body and return the byte offset of every group element, in
   wire order (the same order discharge reports indices in): 20 fixed
   bytes, then two vecs sections — u32 count, per vec u16 width, per
   cipher R ‖ c ‖ flag [‖ Y] — then proofs we don't need to reach. *)
let batch_element_offsets (body : string) : int list =
  let eb = G.element_bytes in
  let u16 p = (Char.code body.[p] lsl 8) lor Char.code body.[p + 1] in
  let u32 p = (u16 p lsl 16) lor u16 (p + 2) in
  let offs = ref [] in
  let pos = ref 20 in
  for _section = 1 to 2 do
    let nvecs = u32 !pos in
    pos := !pos + 4;
    for _v = 1 to nvecs do
      let width = u16 !pos in
      pos := !pos + 2;
      for _c = 1 to width do
        offs := !pos :: !offs;
        (* R *)
        offs := (!pos + eb) :: !offs;
        (* c *)
        let flag = Char.code body.[!pos + (2 * eb)] in
        pos := !pos + (2 * eb) + 1;
        if flag = 1 then (
          offs := !pos :: !offs;
          pos := !pos + eb)
      done
    done
  done;
  List.rev !offs

let sample_batch () =
  let r = rng () in
  let kp = El.keygen r in
  let next = El.keygen r in
  let vec width = fst (El.enc_vec r kp.El.pk (Array.init width (fun _ -> G.random r))) in
  let vec_y width =
    (* Re-encryption toward a next-hop key attaches the Y component, so the
       planted-element walk also covers the 3-element cipher layout. *)
    fst
      (El.reenc_vec r ~share:(G.Scalar.random r) ~coeff:(G.Scalar.random r)
         ~next_pk:(Some next.El.pk) (vec width))
  in
  WC.Batch
    {
      gid = 1;
      iter = 9;
      src_gid = 2;
      sent_at = 0;
      input = [| vec 2; vec_y 1 |];
      output = [| vec_y 2 |];
      proofs = [| "pf" |];
    }

let test_codec_planted_element () =
  let r = rng () in
  let params = Atom_group.Zp.test_params () in
  let framed = WC.encode (sample_batch ()) in
  let kind, body =
    match Frame.decode framed with Some kb -> kb | None -> Alcotest.fail "frame decode"
  in
  let offsets = Array.of_list (batch_element_offsets body) in
  Alcotest.(check bool) "sample batch has several elements" true (Array.length offsets >= 8);
  for _trial = 1 to 8 do
    let idx = Rng.int_below r (Array.length offsets) in
    let bad = zp_bad_bytes params ~len:G.element_bytes r in
    let body' =
      let b = Bytes.of_string body in
      Bytes.blit_string bad 0 b offsets.(idx) G.element_bytes;
      Bytes.to_string b
    in
    let framed' = Frame.encode ~kind body' in
    Alcotest.(check bool) "eager rejects planted frame" true
      (WC.decode ~policy:Validation.Eager framed' = None);
    Alcotest.(check bool) "batched rejects planted frame" true
      (WC.decode ~policy:Validation.Batched framed' = None);
    match WC.decode ~policy:Validation.Deferred framed' with
    | Some (WC.Unchecked d) -> (
        match WC.discharge d with
        | Error i -> Alcotest.(check int) "discharge blames the planted element" idx i
        | Ok _ -> Alcotest.fail "discharge accepted a planted frame")
    | Some (WC.Msg _) -> Alcotest.fail "deferred decode validated early"
    | None -> Alcotest.fail "deferred decode rejected a structurally sound frame"
  done

(* Policies agree on honest frames, and the batched path survives a pool. *)
let test_codec_policies_agree () =
  let framed = WC.encode (sample_batch ()) in
  let eager =
    match WC.decode framed with
    | Some (WC.Msg m) -> m
    | _ -> Alcotest.fail "eager decode failed"
  in
  with_pool 2 (fun pool ->
      match WC.decode ~pool ~policy:Validation.Batched framed with
      | Some (WC.Msg m) ->
          Alcotest.(check string) "batched = eager" (WC.encode eager) (WC.encode m)
      | _ -> Alcotest.fail "batched decode failed");
  match WC.decode ~policy:Validation.Deferred framed with
  | Some (WC.Unchecked d) -> (
      match WC.force (WC.Unchecked d) with
      | Some m -> Alcotest.(check string) "deferred = eager" (WC.encode eager) (WC.encode m)
      | None -> Alcotest.fail "force failed on honest frame")
  | _ -> Alcotest.fail "deferred decode failed"

(* ---- totality of the new decode path ---- *)

(* Truncation at every byte and every single-byte corruption must yield
   None under every policy — never an exception, never a partial parse. *)
let test_codec_truncation_bitflip_all_policies () =
  let framed = WC.encode (sample_batch ()) in
  List.iter
    (fun policy ->
      for i = 0 to String.length framed - 1 do
        if WC.decode ~policy (String.sub framed 0 i) <> None then
          Alcotest.failf "truncation at byte %d accepted (%s)" i
            (Validation.to_string policy)
      done;
      for i = Frame.header_bytes to String.length framed - 1 do
        let b = Bytes.of_string framed in
        Bytes.set b i (Char.chr (Char.code framed.[i] lxor 0x04));
        if WC.decode ~policy (Bytes.to_string b) <> None then
          Alcotest.failf "body flip at byte %d accepted (%s)" i (Validation.to_string policy)
      done)
    Validation.all

let gen_bytes n = QCheck2.Gen.(string_size ~gen:(map Char.chr (int_bound 255)) (int_bound n))

(* Random bodies behind a valid header reach every kind's body parser past
   the CRC; run them through every policy. *)
let prop_decode_body_total_all_policies =
  QCheck2.Test.make ~name:"codec body decoders total under every policy" ~count:150
    (gen_bytes 160) (fun body ->
      List.for_all
        (fun policy ->
          List.for_all
            (fun (kind, _) ->
              match WC.decode_body ~policy kind body with Some _ | None -> true)
            Frame.kind_names)
        Validation.all)

let prop_validation_of_string_roundtrip =
  QCheck2.Test.make ~name:"Validation.of_string/to_string roundtrip" ~count:50
    QCheck2.Gen.(oneofl Validation.all) (fun p ->
      Validation.of_string (Validation.to_string p) = Some p)

let suite =
  let q t = QCheck_alcotest.to_alcotest t in
  ( "validation",
    [
      Alcotest.test_case "zp-test planted non-member" `Quick
        (test_zp_planted Atom_group.Registry.zp_test (Atom_group.Zp.test_params ()));
      Alcotest.test_case "zp-medium planted non-member" `Quick
        (test_zp_planted Atom_group.Registry.zp_medium (Atom_group.Zp.medium_params ()));
      Alcotest.test_case "zp 1024-batch single non-member" `Quick test_zp_1024_batch;
      Alcotest.test_case "p256 planted off-curve point" `Quick test_p256_planted;
      Alcotest.test_case "registry check_batch" `Quick test_registry_check_batch;
      Alcotest.test_case "codec planted element all policies" `Quick
        test_codec_planted_element;
      Alcotest.test_case "codec policies agree" `Quick test_codec_policies_agree;
      Alcotest.test_case "codec truncation + bitflip all policies" `Quick
        test_codec_truncation_bitflip_all_policies;
      q prop_decode_body_total_all_policies;
      q prop_validation_of_string_roundtrip;
    ] )
