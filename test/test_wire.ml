(* Wire-format serialization (proofs, submissions) and the multi-round
   Session driver with the §4.6 fallback policy. *)

module G = (val Atom_group.Registry.zp_test ())
module Pr = Atom_core.Protocol.Make (G)
module El = Pr.El
module P = Pr.P
module Shuf = Pr.Shuf
module Msg = Pr.Msg
open Atom_core

let rng () = Atom_util.Rng.create 0x31e7

let test_enc_proof_roundtrip () =
  let r = rng () in
  let kp = El.keygen r in
  let m = G.random r in
  let ct, randomness = El.enc r kp.El.pk m in
  let pi = P.Enc_proof.prove r ~pk:kp.El.pk ~context:"c" ct ~randomness in
  match P.Enc_proof.of_bytes (P.Enc_proof.to_bytes pi) with
  | None -> Alcotest.fail "decode failed"
  | Some pi' ->
      Alcotest.(check bool) "decoded proof verifies" true
        (P.Enc_proof.verify ~pk:kp.El.pk ~context:"c" ct pi');
      Alcotest.(check bool) "garbage rejected" true (P.Enc_proof.of_bytes "junk" = None)

let test_dleq_roundtrip () =
  let r = rng () in
  let x = G.Scalar.random r in
  let g2 = G.random r in
  let h1 = G.pow_gen x and h2 = G.pow g2 x in
  let pi = P.Dleq.prove r ~context:"d" ~g1:G.generator ~h1 ~g2 ~h2 ~x in
  match P.Dleq.of_bytes (P.Dleq.to_bytes pi) with
  | None -> Alcotest.fail "decode failed"
  | Some pi' ->
      Alcotest.(check bool) "decoded dleq verifies" true
        (P.Dleq.verify ~context:"d" ~g1:G.generator ~h1 ~g2 ~h2 pi');
      (* Trailing bytes rejected. *)
      Alcotest.(check bool) "trailing rejected" true
        (P.Dleq.of_bytes (P.Dleq.to_bytes pi ^ "\000") = None)

let test_reenc_proof_roundtrip () =
  let r = rng () in
  let kp = El.keygen r and next = El.keygen r in
  let m = G.random r in
  let ct, _ = El.enc r kp.El.pk m in
  List.iter
    (fun next_pk ->
      let ct', pi = P.Reenc_proof.reenc_with_proof r ~share:kp.El.sk ~next_pk ~context:"x" ct in
      match P.Reenc_proof.of_bytes (P.Reenc_proof.to_bytes pi) with
      | None -> Alcotest.fail "decode failed"
      | Some pi' ->
          Alcotest.(check bool) "decoded reenc proof verifies" true
            (P.Reenc_proof.verify ~eff_pk:kp.El.pk ~next_pk ~context:"x" ~input:ct ~output:ct' pi'))
    [ Some next.El.pk; None ]

let test_shuffle_proof_roundtrip () =
  let r = rng () in
  let kp = El.keygen r in
  let input = Array.init 5 (fun _ -> fst (El.enc_vec r kp.El.pk [| G.random r; G.random r |])) in
  let output, witness = Option.get (El.shuffle_vec r kp.El.pk input) in
  let pi = Shuf.prove r ~pk:kp.El.pk ~context:"s" ~input ~output ~witness in
  let bytes = Shuf.to_bytes pi in
  (match Shuf.of_bytes bytes with
  | None -> Alcotest.fail "decode failed"
  | Some pi' ->
      Alcotest.(check bool) "decoded shuffle proof verifies" true
        (Shuf.verify ~pk:kp.El.pk ~context:"s" ~input ~output pi'));
  (* Any truncation is rejected. *)
  Alcotest.(check bool) "truncated rejected" true
    (Shuf.of_bytes (String.sub bytes 0 (String.length bytes - 1)) = None);
  Alcotest.(check bool) "empty rejected" true (Shuf.of_bytes "" = None)

let test_shuffle_proof_bitflip () =
  let r = rng () in
  let kp = El.keygen r in
  let input = Array.init 3 (fun _ -> fst (El.enc_vec r kp.El.pk [| G.random r |])) in
  let output, witness = Option.get (El.shuffle_vec r kp.El.pk input) in
  let pi = Shuf.prove r ~pk:kp.El.pk ~context:"s" ~input ~output ~witness in
  let bytes = Shuf.to_bytes pi in
  (* Flip a byte in 20 random positions: decode must fail or verification
     must reject (never accept). *)
  let rr = rng () in
  for _ = 1 to 20 do
    let i = Atom_util.Rng.int_below rr (String.length bytes - 8) + 8 in
    let b = Bytes.of_string bytes in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x41));
    match Shuf.of_bytes (Bytes.to_string b) with
    | None -> ()
    | Some pi' ->
        Alcotest.(check bool) "corrupted proof rejected" false
          (Shuf.verify ~pk:kp.El.pk ~context:"s" ~input ~output pi')
  done;
  ignore pi

let test_submission_roundtrip () =
  let r = rng () in
  List.iter
    (fun variant ->
      let config = Config.tiny ~variant () in
      let net = Pr.setup r config () in
      let s = Pr.submit r net ~user:5 ~entry_gid:2 "wire format test" in
      match Pr.Wire.submission_of_bytes (Pr.Wire.submission_to_bytes s) with
      | None -> Alcotest.fail "submission decode failed"
      | Some s' ->
          Alcotest.(check int) "user" 5 s'.Pr.user;
          Alcotest.(check int) "gid" 2 s'.Pr.entry_gid;
          Alcotest.(check int) "units" (Array.length s.Pr.units) (Array.length s'.Pr.units);
          Alcotest.(check (option string)) "commitment" s.Pr.commitment s'.Pr.commitment)
    [ Config.Basic; Config.Trap ]

let test_round_from_decoded_submissions () =
  (* Serialize every submission, decode on the "server side", run the
     round: everything still verifies and delivers. *)
  let r = rng () in
  let config = Config.tiny ~variant:Config.Trap ~seed:91 () in
  let net = Pr.setup r config () in
  let msgs = List.init 5 (fun i -> Printf.sprintf "wired-%d" i) in
  let decoded =
    List.mapi
      (fun i m ->
        let s = Pr.submit r net ~user:i ~entry_gid:(i mod 4) m in
        Option.get (Pr.Wire.submission_of_bytes (Pr.Wire.submission_to_bytes s)))
      msgs
  in
  let outcome = Pr.run r net decoded in
  Alcotest.(check bool) "no abort" true (outcome.Pr.aborted = None);
  Alcotest.(check (list string)) "delivered" (List.sort compare msgs)
    (List.sort compare outcome.Pr.delivered)

let prop_submission_decode_total =
  QCheck2.Test.make ~name:"submission_of_bytes never raises" ~count:300
    QCheck2.Gen.(string_size ~gen:(map Char.chr (int_bound 255)) (int_bound 300))
    (fun s -> match Pr.Wire.submission_of_bytes s with Some _ | None -> true)

(* ---- Session driver ---- *)

let session_config = Config.tiny ~variant:Config.Trap ~seed:1234 ()

let honest_messages n = List.init n (fun i -> (i, Printf.sprintf "sess-%d" i))

let test_session_clean_rounds () =
  let r = rng () in
  let session = Pr.Session.create session_config in
  for _ = 1 to 3 do
    let report = Pr.Session.run_round session r (honest_messages 4) in
    Alcotest.(check bool) "clean" true (report.Pr.Session.outcome.Pr.aborted = None);
    Alcotest.(check bool) "trap variant" true (report.Pr.Session.variant_used = Config.Trap)
  done;
  Alcotest.(check int) "rounds counted" 3 (Pr.Session.rounds_run session);
  Alcotest.(check int) "board accumulates" 12 (Bulletin.size (Pr.Session.board session))

(* A disruptive user submits a bogus commitment; the round aborts, blame
   identifies them, the session blacklists them and the next round runs
   clean without their traffic. *)
let test_session_blames_and_blacklists () =
  let r = rng () in
  let session = Pr.Session.create session_config in
  let evil_submit rng net ~user ~entry_gid msg =
    let s = Pr.submit rng net ~user ~entry_gid msg in
    if user = 2 then { s with Pr.commitment = Some (String.make 32 '?') } else s
  in
  let report = Pr.Session.run_round session r ~submit_fn:evil_submit (honest_messages 4) in
  Alcotest.(check bool) "aborted" true (report.Pr.Session.outcome.Pr.aborted <> None);
  Alcotest.(check (list int)) "blamed" [ 2 ] report.Pr.Session.outcome.Pr.blamed;
  (* Next round: user 2 is filtered out before submission. *)
  let report2 = Pr.Session.run_round session r (honest_messages 4) in
  Alcotest.(check (list int)) "skipped" [ 2 ] report2.Pr.Session.skipped_users;
  Alcotest.(check bool) "clean" true (report2.Pr.Session.outcome.Pr.aborted = None);
  Alcotest.(check int) "three honest messages" 3
    (List.length report2.Pr.Session.outcome.Pr.delivered)

(* A Sybil disruptor uses a fresh user id every round, defeating the
   blacklist; after [abort_threshold] consecutive aborts the controller
   falls back to the NIZK variant, where users cannot halt rounds at all
   (§4.6). *)
let test_session_falls_back_to_nizk () =
  let r = rng () in
  let session = Pr.Session.create session_config in
  let round = ref 0 in
  let sybil_submit rng net ~user ~entry_gid msg =
    let s = Pr.submit rng net ~user ~entry_gid msg in
    (* a different disruptor id each round *)
    if user = 100 + !round then { s with Pr.commitment = Some (String.make 32 '!') } else s
  in
  let aborted_rounds = ref 0 in
  let variant_seen = ref Config.Trap in
  for _ = 1 to 4 do
    let messages = honest_messages 3 @ [ (100 + !round, "sybil junk") ] in
    let report = Pr.Session.run_round session r ~submit_fn:sybil_submit messages in
    if report.Pr.Session.outcome.Pr.aborted <> None then incr aborted_rounds;
    variant_seen := Controller.variant (session.Pr.Session.controller);
    incr round
  done;
  Alcotest.(check int) "three trap rounds aborted" 3 !aborted_rounds;
  Alcotest.(check bool) "controller fell back to nizk" true (!variant_seen = Config.Nizk);
  (* In the NIZK variant the same junk cannot stop the round (the sybil's
     submission has no trap/commitment structure to poison). *)
  let report = Pr.Session.run_round session r (honest_messages 3 @ [ (999, "sybil junk") ]) in
  Alcotest.(check bool) "nizk round used" true (report.Pr.Session.variant_used = Config.Nizk);
  Alcotest.(check bool) "nizk round clean" true (report.Pr.Session.outcome.Pr.aborted = None);
  Alcotest.(check int) "all four delivered" 4
    (List.length report.Pr.Session.outcome.Pr.delivered)

(* ---- Atom_wire: framing, control plane, data-plane codecs ---- *)

module Frame = Atom_wire.Frame
module Ctrl = Atom_wire.Control
module WC = Atom_wire.Codec.Make (G) (El)

let all_control_msgs : Ctrl.t list =
  [
    Ctrl.Hello { node_id = 7 };
    Ctrl.Join { node_id = 3; port = 9001 };
    Ctrl.Peers { peers = [| (0, 5000); (1, 5001); (2, 5002) |] };
    Ctrl.Group_assign { gid = 2; members = [| 4; 5; 6 |] };
    Ctrl.Barrier { iter = 0 };
    Ctrl.Abort { code = Ctrl.abort_proof_rejected; detail = "shuffle proof rejected gid=1" };
    Ctrl.Shutdown;
    Ctrl.Ack { token = 11 };
    Ctrl.Submissions { gid = 1; blobs = [| ""; "ab"; String.make 40 'x' |] };
    Ctrl.Trap_commitments { gid = 0; commitments = [| String.make 32 'c'; String.make 32 'd' |] };
    Ctrl.Published { plaintexts = [| "hi"; ""; "third" |] };
    Ctrl.Failed { sids = [| 3; 5 |] };
    Ctrl.Failed { sids = [||] };
    Ctrl.Retransmit;
    Ctrl.Stats_request { token = 7 };
    Ctrl.Stats_reply
      { token = 7; node_id = 3; snapshot = "{\"schema\":\"atom-metrics/1\",\"node_id\":3}" };
    Ctrl.Stats_reply { token = 0; node_id = 0; snapshot = "" };
    Ctrl.Submit
      { client = 1001; port = 6001; token = 3; gid = 2; epoch = 5; blob = "onion-bytes";
        pow = "42" };
    Ctrl.Submit { client = 0; port = 0; token = 0; gid = 0; epoch = 0; blob = ""; pow = "" };
    Ctrl.Submit_ack
      { token = 3; status = Ctrl.submit_accepted; epoch = 5; retry_ms = 0; queue_len = 17 };
    Ctrl.Submit_ack
      { token = 4; status = Ctrl.submit_retry; epoch = 6; retry_ms = 250; queue_len = 4096 };
    Ctrl.Epoch_info { epoch = 9; pow_bits = 12; queue_cap = 4096; queue_len = 77 };
    Ctrl.Bulletin_announce
      {
        epoch = 2;
        digest = String.make 32 'h';
        signature = String.make 96 's';
        posts = [| "alpha"; ""; "gamma" |];
      };
    Ctrl.Bulletin_announce
      { epoch = 0; digest = String.make 32 '\000'; signature = ""; posts = [||] };
  ]

(* One instance of every data-plane message, with real ciphertexts (both
   with and without the carried Y component, so both branches of the
   cipher codec are exercised). *)
let sample_codec_msgs () : WC.msg list =
  let r = rng () in
  let kp = El.keygen r in
  let next = El.keygen r in
  let vec () = fst (El.enc_vec r kp.El.pk [| G.random r; G.random r |]) in
  let vec_y () =
    fst
      (El.reenc_vec r ~share:(G.Scalar.random r) ~coeff:(G.Scalar.random r)
         ~next_pk:(Some next.El.pk) (vec ()))
  in
  [
    WC.Group_key { gid = 1; pk = kp.El.pk };
    WC.Batch
      {
        gid = 0;
        iter = 1;
        src_gid = 2;
        sent_at = 1_722_000_123_456_789;
        input = [| vec (); vec () |];
        output = [| vec_y (); vec_y () |];
        proofs = [| "p0"; "p1" |];
      };
    WC.Shuffle_step
      {
        gid = 3;
        iter = 0;
        step = 2;
        sent_at = 0;
        input = [| vec () |];
        output = [| vec () |];
        proof = String.make 65 's';
      };
    WC.Reenc_step
      {
        gid = 1;
        iter = 2;
        batch_idx = 3;
        step = 2;
        sent_at = 987_654_321;
        input = [| vec () |];
        output = [| vec_y () |];
        proofs = [| "" |];
      };
    WC.Exit_batch
      {
        gid = 2;
        iter = 7;
        batch_idx = 0;
        input = [| vec (); vec_y () |];
        output = [| vec_y () |];
        proofs = [| "q" |];
      };
  ]

let test_frame_roundtrip_all_kinds () =
  List.iter
    (fun (kind, name) ->
      let body = "body-of-" ^ name in
      match Frame.decode (Frame.encode ~kind body) with
      | Some (k', b') ->
          Alcotest.(check int) ("kind " ^ name) kind k';
          Alcotest.(check string) ("body " ^ name) body b'
      | None -> Alcotest.fail ("frame roundtrip failed: " ^ name))
    Frame.kind_names;
  (* Empty body is legal (Shutdown has one). *)
  Alcotest.(check bool) "empty body roundtrips" true
    (Frame.decode (Frame.encode ~kind:Frame.kind_shutdown "") = Some (Frame.kind_shutdown, ""))

let test_frame_rejections () =
  let f = Frame.encode ~kind:Frame.kind_barrier "\000\000\000\007" in
  let flip i mask =
    let b = Bytes.of_string f in
    Bytes.set b i (Char.chr (Char.code f.[i] lxor mask));
    Bytes.to_string b
  in
  Alcotest.(check bool) "bad magic" true (Frame.decode (flip 0 0x01) = None);
  Alcotest.(check bool) "bad version" true (Frame.decode (flip 4 0x02) = None);
  Alcotest.(check bool) "unknown kind" true (Frame.decode (flip 5 0x40) = None);
  Alcotest.(check bool) "nonzero flags" true (Frame.decode (flip 6 0x01) = None);
  Alcotest.(check bool) "bad body length" true (Frame.decode (flip 11 0x01) = None);
  Alcotest.(check bool) "bad crc" true (Frame.decode (flip 12 0x80) = None);
  Alcotest.(check bool) "flipped body byte" true (Frame.decode (flip 16 0x01) = None);
  Alcotest.(check bool) "trailing garbage" true (Frame.decode (f ^ "\000") = None);
  Alcotest.(check bool) "empty input" true (Frame.decode "" = None);
  Alcotest.(check bool) "header survives intact" true (Frame.kind_of f = Some Frame.kind_barrier)

let test_control_roundtrip_and_truncation () =
  List.iter
    (fun msg ->
      let e = Ctrl.encode msg in
      (match Ctrl.decode e with
      | Some msg' -> Alcotest.(check bool) "control roundtrip" true (msg' = msg)
      | None -> Alcotest.fail "control decode failed");
      (* Every strict prefix must be rejected — no partial parses. *)
      for i = 0 to String.length e - 1 do
        if Ctrl.decode (String.sub e 0 i) <> None then
          Alcotest.failf "truncation at byte %d accepted" i
      done;
      Alcotest.(check bool) "trailing byte rejected" true (Ctrl.decode (e ^ "\000") = None))
    all_control_msgs

let test_control_bitflips () =
  List.iter
    (fun msg ->
      let e = Ctrl.encode msg in
      String.iteri
        (fun i _ ->
          List.iter
            (fun mask ->
              let b = Bytes.of_string e in
              Bytes.set b i (Char.chr (Char.code e.[i] lxor mask));
              match Ctrl.decode (Bytes.to_string b) with
              | None -> () (* checksum or header validation caught it *)
              | Some msg' ->
                  (* A kind-byte flip can land on another registered kind
                     whose layout happens to parse; it must never
                     reproduce the original message. *)
                  Alcotest.(check bool) "flip never yields the original" true (msg' <> msg))
            [ 0x01; 0x80 ])
        e)
    all_control_msgs

let test_codec_roundtrip_truncation_bitflip () =
  List.iter
    (fun msg ->
      let e = WC.encode msg in
      (* All three validation policies must accept the honest frame and
         agree on the decoded message. The encoding is canonical, so
         re-encoding the decoded message is a full structural equality
         check without needing element comparison. *)
      List.iter
        (fun policy ->
          match WC.decode ~policy e with
          | None -> Alcotest.fail "codec decode failed"
          | Some d -> (
              match WC.force d with
              | None -> Alcotest.fail "honest frame failed discharge"
              | Some msg' ->
                  Alcotest.(check string) "canonical re-encode" e (WC.encode msg')))
        Atom_wire.Validation.all;
      for i = 0 to String.length e - 1 do
        if WC.decode (String.sub e 0 i) <> None then
          Alcotest.failf "codec truncation at byte %d accepted" i
      done;
      (* Every single-byte corruption of the body is caught by the CRC. *)
      for i = Frame.header_bytes to String.length e - 1 do
        let b = Bytes.of_string e in
        Bytes.set b i (Char.chr (Char.code e.[i] lxor 0x10));
        if WC.decode (Bytes.to_string b) <> None then
          Alcotest.failf "codec body flip at byte %d accepted" i
      done)
    (sample_codec_msgs ())

(* Satellite: the three validation policies on decode. An encoding that
   is structurally sound but outside the subgroup (q < v < p in the QR⁺
   representation) must be rejected by Eager and Batched, and must pass
   the structural phase under Deferred but fail its discharge — with the
   discharge naming the planted element's index. *)
let test_codec_deferred_validation () =
  let r = rng () in
  let pk = (El.keygen r).El.pk in
  let e = WC.encode (WC.Group_key { gid = 0; pk }) in
  let _, body =
    match Frame.decode e with Some kb -> kb | None -> Alcotest.fail "frame decode"
  in
  let needle = G.to_bytes pk in
  let nlen = String.length needle in
  let idx =
    let bn = String.length body in
    let rec go i =
      if i + nlen > bn then Alcotest.fail "element bytes not found in body"
      else if String.sub body i nlen = needle then i
      else go (i + 1)
    in
    go 0
  in
  let bad =
    (* q + 1 is nonzero and < p, so the structural range check accepts
       it, but it is above the canonical QR⁺ range and not a member. *)
    let params = Atom_group.Zp.test_params () in
    let open Atom_nat in
    Nat.to_bytes_be ~length:nlen (Nat.add params.Atom_group.Zp.q Nat.one)
  in
  Alcotest.(check bool) "crafted bytes are structurally sound" true
    (G.Unverified.of_bytes bad <> None);
  Alcotest.(check bool) "crafted bytes are not a member" true (G.of_bytes bad = None);
  let body' =
    String.sub body 0 idx ^ bad
    ^ String.sub body (idx + nlen) (String.length body - idx - nlen)
  in
  Alcotest.(check bool) "eager rejects out-of-subgroup element" true
    (WC.decode_body ~policy:Atom_wire.Validation.Eager Frame.kind_group_key body' = None);
  Alcotest.(check bool) "batched rejects out-of-subgroup element" true
    (WC.decode_body ~policy:Atom_wire.Validation.Batched Frame.kind_group_key body' = None);
  (match WC.decode_body ~policy:Atom_wire.Validation.Deferred Frame.kind_group_key body' with
  | Some (WC.Unchecked d) ->
      Alcotest.(check bool) "discharge names the planted element" true
        (WC.discharge d = Error 0)
  | Some (WC.Msg _) -> Alcotest.fail "deferred decode validated early"
  | None -> Alcotest.fail "deferred decode rejected a structurally sound body");
  match WC.decode_body ~policy:Atom_wire.Validation.Deferred Frame.kind_group_key body with
  | Some (WC.Unchecked d) -> (
      match WC.discharge d with
      | Ok (WC.Group_key { pk = pk'; _ }) ->
          Alcotest.(check string) "honest body discharges to the same key" needle
            (G.to_bytes pk')
      | Ok _ -> Alcotest.fail "discharge built the wrong message"
      | Error i -> Alcotest.failf "honest body failed discharge at %d" i)
  | _ -> Alcotest.fail "deferred decode rejected the honest body"

let gen_bytes n = QCheck2.Gen.(string_size ~gen:(map Char.chr (int_bound 255)) (int_bound n))

let prop_frame_decode_total =
  QCheck2.Test.make ~name:"Frame decoders never raise" ~count:500 (gen_bytes 200) (fun s ->
      ignore (Frame.decode s);
      ignore (Frame.read_header s);
      ignore (Frame.kind_of s);
      true)

let prop_control_decode_total =
  QCheck2.Test.make ~name:"Control.decode never raises" ~count:500 (gen_bytes 200) (fun s ->
      match Ctrl.decode s with Some _ | None -> true)

let prop_codec_decode_total =
  QCheck2.Test.make ~name:"Codec.decode never raises" ~count:500 (gen_bytes 200) (fun s ->
      match WC.decode s with Some _ | None -> true)

(* The hard half of totality: a random body behind a VALID header passes
   the checksum, so this drives every kind's body parser on arbitrary
   bytes (the frame-level fuzz above almost never gets past the CRC). *)
let prop_decode_body_total =
  QCheck2.Test.make ~name:"per-kind body decoders total + framed roundtrip" ~count:200
    (gen_bytes 120) (fun body ->
      List.for_all
        (fun (kind, _) ->
          (match Ctrl.decode_body kind body with Some _ | None -> true)
          && (match WC.decode_body kind body with Some _ | None -> true)
          &&
          match Frame.decode (Frame.encode ~kind body) with
          | Some (k, b) -> k = kind && b = body
          | None -> false)
        Frame.kind_names)

(* ---- Message.unframe strictness (covert-channel hardening) ---- *)

let test_unframe_strictness () =
  (* +1 element of width forces a non-empty padding region. *)
  let width = Msg.width_for ~payload_bytes:8 + 1 in
  let framed = Msg.frame ~tag:Msg.tag_message "payload!" ~width in
  (match Msg.unframe framed with
  | Some (tag, payload) ->
      Alcotest.(check char) "tag" Msg.tag_message tag;
      Alcotest.(check string) "payload" "payload!" payload
  | None -> Alcotest.fail "clean frame rejected");
  let mut i c =
    let b = Bytes.of_string framed in
    Bytes.set b i c;
    Bytes.to_string b
  in
  Alcotest.(check bool) "unknown tag rejected" true (Msg.unframe (mut 0 'X') = None);
  Alcotest.(check bool) "non-zero padding rejected" true
    (Msg.unframe (mut (String.length framed - 1) '\001') = None);
  Alcotest.(check bool) "trap tag accepted" true
    (match Msg.unframe (Msg.frame ~tag:Msg.tag_trap "trapdata" ~width) with
    | Some (t, "trapdata") -> t = Msg.tag_trap
    | _ -> false);
  Alcotest.(check bool) "short input rejected" true (Msg.unframe "M" = None)

(* ---- Submissions over the wire frame ---- *)

let test_submissions_frame_roundtrip () =
  let r = rng () in
  let config = Config.tiny ~variant:Config.Nizk () in
  let net = Pr.setup r config () in
  let subs =
    List.init 3 (fun i -> Pr.submit r net ~user:i ~entry_gid:1 (Printf.sprintf "m%d" i))
  in
  let frame = Pr.Wire.submissions_to_frame ~gid:1 subs in
  (match Pr.Wire.submissions_of_frame frame with
  | None -> Alcotest.fail "submissions frame decode failed"
  | Some (gid, subs') ->
      Alcotest.(check int) "gid" 1 gid;
      Alcotest.(check (list int)) "users" [ 0; 1; 2 ]
        (List.map (fun s -> s.Pr.user) subs'));
  Alcotest.(check bool) "garbage rejected" true (Pr.Wire.submissions_of_frame "nope" = None);
  (* A bad blob inside an otherwise-valid frame rejects the whole frame. *)
  let bad = Ctrl.encode (Ctrl.Submissions { gid = 1; blobs = [| "junk" |] }) in
  Alcotest.(check bool) "bad blob rejects whole frame" true
    (Pr.Wire.submissions_of_frame bad = None)

let prop_submissions_frame_total =
  QCheck2.Test.make ~name:"submissions_of_frame never raises" ~count:300 (gen_bytes 200)
    (fun s -> match Pr.Wire.submissions_of_frame s with Some _ | None -> true)

let suite =
  let q t = QCheck_alcotest.to_alcotest t in
  ( "wire",
    [
      Alcotest.test_case "enc proof roundtrip" `Quick test_enc_proof_roundtrip;
      Alcotest.test_case "dleq roundtrip" `Quick test_dleq_roundtrip;
      Alcotest.test_case "reenc proof roundtrip" `Quick test_reenc_proof_roundtrip;
      Alcotest.test_case "shuffle proof roundtrip" `Quick test_shuffle_proof_roundtrip;
      Alcotest.test_case "shuffle proof bitflips" `Quick test_shuffle_proof_bitflip;
      Alcotest.test_case "submission roundtrip" `Quick test_submission_roundtrip;
      Alcotest.test_case "round from decoded submissions" `Quick test_round_from_decoded_submissions;
      Alcotest.test_case "session clean rounds" `Quick test_session_clean_rounds;
      Alcotest.test_case "session blame + blacklist" `Quick test_session_blames_and_blacklists;
      Alcotest.test_case "session nizk fallback" `Quick test_session_falls_back_to_nizk;
      q prop_submission_decode_total;
      Alcotest.test_case "frame roundtrip all kinds" `Quick test_frame_roundtrip_all_kinds;
      Alcotest.test_case "frame rejections" `Quick test_frame_rejections;
      Alcotest.test_case "control roundtrip + truncation" `Quick
        test_control_roundtrip_and_truncation;
      Alcotest.test_case "control bitflips" `Quick test_control_bitflips;
      Alcotest.test_case "codec roundtrip + truncation + bitflip" `Quick
        test_codec_roundtrip_truncation_bitflip;
      Alcotest.test_case "codec deferred validation" `Quick test_codec_deferred_validation;
      Alcotest.test_case "unframe strictness" `Quick test_unframe_strictness;
      Alcotest.test_case "submissions frame roundtrip" `Quick test_submissions_frame_roundtrip;
      q prop_frame_decode_total;
      q prop_control_decode_total;
      q prop_codec_decode_total;
      q prop_decode_body_total;
      q prop_submissions_frame_total;
    ] )
