(* Fast-path agreement tests: the multi-exponentiation engine (comb tables,
   pow2/Straus, msm/Pippenger, batch normalization, per-base table caches)
   must agree with the naive composition of [pow] and [mul] on every
   backend, including the degenerate inputs the optimized ladders love to
   get wrong: zero scalars, the identity element / point at infinity,
   repeated bases, singleton and empty batches. *)

module Laws (G : Atom_group.Group_intf.GROUP) : sig
  val cases : unit Alcotest.test_case list
end = struct
  module S = G.Scalar

  let rng () = Atom_util.Rng.create (Atom_util.Rng.hash_string ("fastpath-" ^ G.name))

  let check msg expected got = Alcotest.(check bool) msg true (G.equal expected got)

  (* Reference implementations in terms of the independently-tested
     single-base [pow] and [mul]. *)
  let naive_pow2 a j b k = G.mul (G.pow a j) (G.pow b k)
  let naive_msm pairs = Array.fold_left (fun acc (x, k) -> G.mul acc (G.pow x k)) G.one pairs

  let test_pow_gen_agrees () =
    let r = rng () in
    (* Tiny scalars cross every nibble boundary of the comb. *)
    for k = 0 to 33 do
      check (Printf.sprintf "comb k=%d" k)
        (G.pow G.generator (S.of_int k))
        (G.pow_gen (S.of_int k))
    done;
    (* Order-adjacent scalars: top windows fully populated. *)
    let n1 = S.of_nat (Atom_nat.Nat.sub S.order Atom_nat.Nat.one) in
    check "comb k=q-1" (G.pow G.generator n1) (G.pow_gen n1);
    for _ = 1 to 10 do
      let k = S.random r in
      check "comb random" (G.pow G.generator k) (G.pow_gen k)
    done;
    Alcotest.(check bool) "comb k=0" true (G.is_one (G.pow_gen S.zero))

  let test_pow_cached_base () =
    let r = rng () in
    let x = G.random r in
    let ks = Array.init 5 (fun _ -> S.random r) in
    (* Repeated same-base calls walk the cache's record/build/hit states;
       every call must agree with the first (naive) answer. *)
    Array.iter
      (fun k ->
        let expected = G.mul (G.pow x k) G.one in
        for pass = 1 to 3 do
          check (Printf.sprintf "cached pow pass %d" pass) expected (G.pow x k)
        done)
      ks

  let test_pow2_agrees () =
    let r = rng () in
    for _ = 1 to 10 do
      let a = G.random r and b = G.random r in
      let j = S.random r and k = S.random r in
      check "pow2 random" (naive_pow2 a j b k) (G.pow2 a j b k);
      check "pow2 j=0" (naive_pow2 a S.zero b k) (G.pow2 a S.zero b k);
      check "pow2 k=0" (naive_pow2 a j b S.zero) (G.pow2 a j b S.zero);
      check "pow2 both zero" G.one (G.pow2 a S.zero b S.zero);
      check "pow2 identity base" (G.pow b k) (G.pow2 G.one j b k);
      check "pow2 generator base" (naive_pow2 G.generator j b k) (G.pow2 G.generator j b k);
      check "pow2 same base" (G.pow a (S.add j k)) (G.pow2 a j a k)
    done

  let test_msm_agrees () =
    let r = rng () in
    let sizes = [ 0; 1; 2; 5; 17 ] in
    List.iter
      (fun n ->
        let pairs = Array.init n (fun _ -> (G.random r, S.random r)) in
        check (Printf.sprintf "msm n=%d" n) (naive_msm pairs) (G.msm pairs))
      sizes;
    (* Degenerate terms mixed into one product: zero scalars, the identity
       base, generator terms (folded onto the comb), a repeated base. *)
    let x = G.random r and y = G.random r in
    let j = S.random r and k = S.random r in
    let pairs =
      [|
        (G.generator, j);
        (x, S.zero);
        (G.one, k);
        (y, k);
        (G.generator, k);
        (y, S.one);
        (x, j);
      |]
    in
    check "msm degenerate mix" (naive_msm pairs) (G.msm pairs);
    check "msm all-zero scalars" G.one (G.msm [| (x, S.zero); (y, S.zero) |]);
    check "msm all-identity bases" G.one (G.msm [| (G.one, j); (G.one, k) |]);
    check "msm empty" G.one (G.msm [||]);
    (* Tiny scalars exercise the lazily-shortened window tables. *)
    let tiny = Array.init 8 (fun i -> (G.random r, S.of_int i)) in
    check "msm tiny scalars" (naive_msm tiny) (G.msm tiny)

  let test_msm_large () =
    (* Past the Pippenger cutover on the curve backend (n > 200). *)
    let r = rng () in
    let pairs = Array.init 220 (fun _ -> (G.random r, S.random r)) in
    check "msm n=220" (naive_msm pairs) (G.msm pairs)

  let test_pow_batch_agrees () =
    let r = rng () in
    let x = G.random r in
    let ks = Array.init 6 (fun i -> if i = 2 then S.zero else S.random r) in
    let expected = Array.map (G.pow x) ks in
    let got = G.pow_batch x ks in
    Alcotest.(check int) "pow_batch length" (Array.length expected) (Array.length got);
    Array.iteri (fun i e -> check (Printf.sprintf "pow_batch [%d]" i) e got.(i)) expected;
    (* Batch-normalization edge cases: every output infinite, a singleton
       batch, the empty batch. *)
    let all_inf = G.pow_batch G.one ks in
    Array.iteri
      (fun i e -> Alcotest.(check bool) (Printf.sprintf "identity batch [%d]" i) true (G.is_one e))
      all_inf;
    let single = G.pow_batch x [| ks.(0) |] in
    check "singleton batch" (G.pow x ks.(0)) single.(0);
    Alcotest.(check int) "empty batch" 0 (Array.length (G.pow_batch x [||]));
    let gen = G.pow_batch G.generator ks in
    Array.iteri
      (fun i k -> check (Printf.sprintf "generator batch vs pow [%d]" i) (G.pow_gen k) gen.(i))
      ks

  let test_pow_gen_batch_agrees () =
    let r = rng () in
    (* Zero scalars interleaved with random ones: the batch normalizer must
       skip the infinities without misaligning the rest. *)
    let ks = [| S.zero; S.random r; S.zero; S.random r; S.one; S.zero |] in
    let got = G.pow_gen_batch ks in
    Array.iteri (fun i k -> check (Printf.sprintf "pow_gen_batch [%d]" i) (G.pow_gen k) got.(i)) ks;
    let all_zero = G.pow_gen_batch [| S.zero; S.zero |] in
    Array.iter (fun e -> Alcotest.(check bool) "all-zero gen batch" true (G.is_one e)) all_zero;
    Alcotest.(check int) "empty gen batch" 0 (Array.length (G.pow_gen_batch [||]))

  let cases =
    [
      Alcotest.test_case (G.name ^ " comb pow_gen = pow g") `Quick test_pow_gen_agrees;
      Alcotest.test_case (G.name ^ " cached-base pow stable") `Quick test_pow_cached_base;
      Alcotest.test_case (G.name ^ " pow2 = pow·pow") `Quick test_pow2_agrees;
      Alcotest.test_case (G.name ^ " msm = fold pow") `Quick test_msm_agrees;
      Alcotest.test_case (G.name ^ " msm large (Pippenger)") `Slow test_msm_large;
      Alcotest.test_case (G.name ^ " pow_batch = map pow") `Quick test_pow_batch_agrees;
      Alcotest.test_case (G.name ^ " pow_gen_batch edge cases") `Quick test_pow_gen_batch_agrees;
    ]
end

let suite () =
  let module Zp_laws = Laws ((val Atom_group.Registry.zp_test ())) in
  let module Zp256_laws = Laws ((val Atom_group.Registry.zp_medium ())) in
  let module P256_laws = Laws (Atom_group.P256) in
  ("fastpath", Zp_laws.cases @ Zp256_laws.cases @ P256_laws.cases)
