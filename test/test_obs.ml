(* Observability layer: metrics-registry semantics, virtual-time span
   tracing and exclusive phase accounting, Chrome trace_event JSON
   well-formedness, leveled logging, group-op tallies — and the end-to-end
   guarantee the layer is built around: a distributed round's trace is a
   pure function of (seed, fault plan), and the critical track's per-phase
   breakdown tiles the round latency. *)

module G = (val Atom_group.Registry.zp_test ())
module Pr = Atom_core.Protocol.Make (G)
module Dist = Atom_core.Distributed.Make (G) (Pr)
open Atom_obs

(* ---- metrics registry ---- *)

let test_counter_gauge () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg "a.count" in
  Metrics.incr c;
  Metrics.incr c;
  Metrics.add c 2.5;
  Alcotest.(check (float 1e-9)) "counter accumulates" 4.5 (Metrics.value c);
  (* find-or-create returns the same cell. *)
  Metrics.incr (Metrics.counter reg "a.count");
  Alcotest.(check (float 1e-9)) "aliased by name" 5.5 (Metrics.counter_value reg "a.count");
  let g = Metrics.gauge reg "a.gauge" in
  Metrics.set g 3.;
  Metrics.set g 7.;
  Alcotest.(check (float 1e-9)) "gauge keeps last" 7. (Metrics.gauge_value g);
  (* Same name, different kind: refused. *)
  (match Metrics.gauge reg "a.count" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "kind mismatch should raise");
  Alcotest.(check int) "dump lists both" 2 (List.length (Metrics.dump reg));
  Alcotest.(check (float 1e-9)) "absent counter reads 0" 0. (Metrics.counter_value reg "nope")

let test_histogram_semantics () =
  let reg = Metrics.create () in
  let h = Metrics.histogram reg ~buckets:4 ~lo:0. ~hi:4. "h" in
  List.iter (Metrics.observe h) [ 0.5; 1.5; 1.7; 3.9; 4.0; -1.0; 9.0 ];
  Alcotest.(check int) "count includes out-of-range" 7 (Metrics.hist_count h);
  Alcotest.(check (float 1e-9)) "sum" 19.6 (Metrics.hist_sum h);
  Alcotest.(check (float 1e-9)) "mean" (19.6 /. 7.) (Metrics.hist_mean h);
  Alcotest.(check (float 1e-9)) "p0 is exact min" (-1.0) (Metrics.hist_quantile h 0.);
  Alcotest.(check (float 1e-9)) "p100 is exact max" 9.0 (Metrics.hist_quantile h 100.);
  (* Interior quantiles are bucket estimates but never leave [min, max]. *)
  List.iter
    (fun p ->
      let q = Metrics.hist_quantile h p in
      Alcotest.(check bool)
        (Printf.sprintf "p%.0f in range" p)
        true
        (q >= -1.0 && q <= 9.0))
    [ 10.; 50.; 90.; 99. ]

let test_noop_registry () =
  let reg = Metrics.noop in
  Alcotest.(check bool) "disabled" false (Metrics.enabled reg);
  let c = Metrics.counter reg "x" in
  Metrics.incr c;
  Metrics.add c 10.;
  Metrics.observe (Metrics.histogram reg ~lo:0. ~hi:1. "h") 0.5;
  Alcotest.(check (float 1e-9)) "records nothing" 0. (Metrics.counter_value reg "x");
  Alcotest.(check int) "dump empty" 0 (List.length (Metrics.dump reg));
  Alcotest.(check bool) "live registry is enabled" true (Metrics.enabled (Metrics.create ()))

(* ---- tracer against a fake clock ---- *)

let test_span_nesting () =
  let tr = Trace.create () in
  let now = ref 0. in
  Trace.set_clock tr (fun () -> !now);
  let outer = Trace.begin_span tr ~tid:1 "outer" in
  now := 1.;
  Trace.with_span tr ~tid:1 "inner" (fun () -> now := 3.);
  now := 5.;
  Trace.end_span tr outer;
  Trace.end_span tr outer;
  (* idempotent: emitted once *)
  let evs = Trace.events tr in
  Alcotest.(check int) "two spans" 2 (List.length evs);
  (* Complete events are emitted at close, so the child precedes the
     parent, each stamped from the bound clock. *)
  (match evs with
  | [ inner; outer ] ->
      Alcotest.(check string) "child first" "inner" inner.Trace.name;
      Alcotest.(check (float 1e-9)) "child ts" 1. inner.Trace.ts;
      Alcotest.(check (float 1e-9)) "child dur" 2. inner.Trace.dur;
      Alcotest.(check string) "parent last" "outer" outer.Trace.name;
      Alcotest.(check (float 1e-9)) "parent ts" 0. outer.Trace.ts;
      Alcotest.(check (float 1e-9)) "parent dur" 5. outer.Trace.dur
  | _ -> Alcotest.fail "unexpected event shape");
  (* The noop tracer records nothing. *)
  let sp = Trace.begin_span Trace.noop ~tid:0 "x" in
  Trace.end_span Trace.noop sp;
  Alcotest.(check int) "noop records nothing" 0 (Trace.event_count Trace.noop)

let test_phase_tiling () =
  let tr = Trace.create () in
  let now = ref 0. in
  Trace.set_clock tr (fun () -> !now);
  let ph = Trace.Phase.start tr ~tid:3 "a" in
  now := 2.;
  Trace.Phase.switch ph "b";
  Trace.Phase.switch ph "b";
  (* same phase: no segment break *)
  now := 3.;
  Trace.Phase.switch ph "a";
  Trace.Phase.switch ph "c";
  (* zero-length "a" segment: dropped *)
  Alcotest.(check string) "current" "c" (Trace.Phase.current ph);
  now := 7.;
  Trace.Phase.stop ph;
  let evs = Trace.events tr in
  Alcotest.(check int) "three segments" 3 (List.length evs);
  List.iter
    (fun (e : Trace.event) ->
      Alcotest.(check string) "phase category" Trace.Phase.cat e.Trace.cat)
    evs;
  (* Segments tile [0, 7]: no gaps, no overlap, in order. *)
  let total = List.fold_left (fun acc (e : Trace.event) -> acc +. e.Trace.dur) 0. evs in
  Alcotest.(check (float 1e-9)) "durations tile lifetime" 7. total;
  match Trace.Breakdown.tracks evs with
  | [ t ] ->
      Alcotest.(check int) "track tid" 3 t.Trace.Breakdown.tid;
      Alcotest.(check (float 1e-9)) "track total" 7. t.Trace.Breakdown.total;
      Alcotest.(check (float 1e-9)) "track end" 7. t.Trace.Breakdown.t_end;
      Alcotest.(check (float 1e-9)) "phase a" 2.
        (List.assoc "a" t.Trace.Breakdown.phases);
      Alcotest.(check (float 1e-9)) "phase c" 4.
        (List.assoc "c" t.Trace.Breakdown.phases)
  | _ -> Alcotest.fail "expected one track"

(* ---- Chrome trace JSON ---- *)

(* Minimal JSON validator: accepts exactly the grammar (objects, arrays,
   strings with escapes, numbers, literals) and fails loudly on anything
   malformed — enough to guarantee Perfetto can load what we emit. *)
let validate_json (s : string) : unit =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = Alcotest.fail (Printf.sprintf "json: %s at byte %d" msg !pos) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\n' | '\t' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    if peek () = Some c then incr pos else fail (Printf.sprintf "expected %c" c)
  in
  let lit w =
    let l = String.length w in
    if !pos + l <= n && String.sub s !pos l = w then pos := !pos + l else fail w
  in
  let str () =
    expect '"';
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
            pos := !pos + 2;
            go ()
        | c when Char.code c < 0x20 -> fail "unescaped control char"
        | _ ->
            incr pos;
            go ()
    in
    go ()
  in
  let number () =
    let start = !pos in
    while
      !pos < n
      && match s.[!pos] with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    do
      incr pos
    done;
    if !pos = start then fail "number"
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' -> obj ()
    | Some '[' -> arr ()
    | Some '"' -> str ()
    | Some ('-' | '0' .. '9') -> number ()
    | Some 't' -> lit "true"
    | Some 'f' -> lit "false"
    | Some 'n' -> lit "null"
    | _ -> fail "value"
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then incr pos
    else
      let rec items () =
        value ();
        skip_ws ();
        match peek () with
        | Some ',' ->
            incr pos;
            items ()
        | Some ']' -> incr pos
        | _ -> fail "array"
      in
      items ()
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then incr pos
    else
      let rec members () =
        skip_ws ();
        str ();
        skip_ws ();
        expect ':';
        value ();
        skip_ws ();
        match peek () with
        | Some ',' ->
            incr pos;
            members ()
        | Some '}' -> incr pos
        | _ -> fail "object"
      in
      members ()
  in
  value ();
  skip_ws ();
  if !pos <> n then fail "trailing garbage"

let count_occurrences needle hay =
  let rec go from acc =
    match String.index_from_opt hay from needle.[0] with
    | None -> acc
    | Some i ->
        if i + String.length needle <= String.length hay
           && String.sub hay i (String.length needle) = needle
        then go (i + 1) (acc + 1)
        else go (i + 1) acc
  in
  go 0 0

let test_chrome_json_well_formed () =
  let tr = Trace.create () in
  let now = ref 0. in
  Trace.set_clock tr (fun () -> !now);
  Trace.thread_name tr ~tid:1 "group \"one\"\nnasty";
  (* escaping *)
  Trace.instant tr ~cat:"fault" ~tid:1 ~args:[ ("machine", Trace.I 3) ] "fail";
  now := 0.5;
  Trace.with_span tr ~tid:1
    ~args:[ ("group", Trace.I 1); ("note", Trace.S "a\\b"); ("x", Trace.F 1.5) ]
    "iter 0"
    (fun () -> now := 1.);
  let json = Trace.to_chrome_json tr in
  validate_json json;
  Alcotest.(check int) "one json object per event" (Trace.event_count tr)
    (count_occurrences "\"ph\":" json);
  Alcotest.(check bool) "perfetto preamble" true
    (String.length json > 20 && String.sub json 0 20 = "{\"displayTimeUnit\":\"")

let test_merged_lanes () =
  let mk name ts dur = { Trace.name; cat = "phase"; ph = 'X'; ts; dur; tid = 0; args = [] } in
  let lanes =
    [
      {
        Trace.lane_pid = 1;
        lane_name = "node 0";
        lane_offset = 2.5;
        lane_events =
          [
            {
              Trace.name = "thread_name";
              cat = "";
              ph = 'M';
              ts = 9.;
              dur = 0.;
              tid = 0;
              args = [ ("name", Trace.S "event loop") ];
            };
            mk "verify" 1.0 0.5;
          ];
      };
      {
        Trace.lane_pid = 2;
        lane_name = "coordinator";
        lane_offset = 0.;
        lane_events = [ mk "send" 0.25 0.125 ];
      };
    ]
  in
  let json = Trace.to_chrome_json_lanes lanes in
  validate_json json;
  (* Each lane opens with its own process_name metadata record. *)
  Alcotest.(check int) "one process_name per lane" 2 (count_occurrences "\"process_name\"" json);
  (* The node lane's span is shifted onto the coordinator timebase:
     (1.0 + 2.5) s = 3500000 µs. Its duration is not shifted. *)
  Alcotest.(check int) "offset applied to span ts" 1 (count_occurrences "\"ts\":3500000.000" json);
  Alcotest.(check int) "dur unshifted" 1 (count_occurrences "\"dur\":500000.000" json);
  (* Metadata records keep their own timestamps — offsets apply only to
     real events, so lane labels don't wander off ts 0. *)
  Alcotest.(check int) "metadata never shifted" 0
    (count_occurrences "\"ts\":11500000.000" json);
  Alcotest.(check int) "metadata ts intact" 1 (count_occurrences "\"ts\":9000000.000" json);
  (* Every event lands in its lane's pid group. *)
  Alcotest.(check int) "pid 1 events" 3 (count_occurrences "\"pid\":1" json);
  Alcotest.(check int) "pid 2 events" 2 (count_occurrences "\"pid\":2" json)

let test_open_phases () =
  let tr = Trace.create () in
  let now = ref 1. in
  Trace.set_clock tr (fun () -> !now);
  Alcotest.(check int) "none open initially" 0 (List.length (Trace.open_phases tr));
  let p0 = Trace.Phase.start tr ~tid:0 "barrier" in
  now := 2.;
  let p1 = Trace.Phase.start tr ~tid:4 "recv-wait" in
  (match Trace.open_phases tr with
  | [ (0, "barrier", s0); (4, "recv-wait", s1) ] ->
      Alcotest.(check (float 1e-9)) "since of first" 1. s0;
      Alcotest.(check (float 1e-9)) "since of second" 2. s1
  | l -> Alcotest.failf "unexpected open phases (%d entries)" (List.length l));
  now := 3.;
  Trace.Phase.switch p0 "verify";
  (match Trace.open_phases tr with
  | (0, "verify", s) :: _ -> Alcotest.(check (float 1e-9)) "switch resets since" 3. s
  | _ -> Alcotest.fail "expected open verify phase");
  Trace.Phase.stop p0;
  Trace.Phase.stop p1;
  Alcotest.(check int) "all closed after stop" 0 (List.length (Trace.open_phases tr))

(* ---- atom-metrics/1 snapshots ---- *)

let test_snapshot_roundtrip () =
  let obs = Ctx.create ~tracing:true () in
  let now = ref 0. in
  Ctx.bind_clock obs (fun () -> !now);
  let reg = Ctx.metrics obs in
  Metrics.incr (Metrics.counter reg "round.count");
  Metrics.add (Metrics.counter reg "bytes.sent") 1234.5;
  Metrics.set (Metrics.gauge reg "peers.live") 7.;
  let h = Metrics.histogram reg ~buckets:4 ~lo:0. ~hi:4. "lat" in
  List.iter (Metrics.observe h) [ 0.5; 1.5; 3.9; -1.; 9. ];
  let tr = Ctx.tracer obs in
  Trace.thread_name tr ~tid:0 "event loop";
  Trace.instant tr ~cat:"fault" ~tid:0 ~args:[ ("machine", Trace.I 3) ] "kill";
  now := 0.25;
  Trace.with_span tr ~tid:1 ~cat:"step"
    ~args:[ ("s", Trace.S "a\"b\\c\nd"); ("i", Trace.I (-2)); ("f", Trace.F 1.5) ]
    "shuffle_step"
    (fun () -> now := 1.);
  let ph = Trace.Phase.start tr ~tid:0 "barrier" in
  now := 2.;
  Trace.Phase.switch ph "verify";
  (* [ph] is left open, so the snapshot must carry it as an open span. *)
  let snap = Snapshot.of_ctx ~node_id:5 ~include_trace:true obs in
  Alcotest.(check int) "node id" 5 snap.Snapshot.node_id;
  Alcotest.(check (float 1e-9)) "now read from the bound clock" 2. snap.Snapshot.now;
  Alcotest.(check (float 1e-9)) "counter carried" 1. (Snapshot.counter_value snap "round.count");
  Alcotest.(check bool) "open span captured" true
    (List.exists
       (fun os -> os.Snapshot.os_tid = 0 && os.Snapshot.os_phase = "verify")
       snap.Snapshot.open_spans);
  Alcotest.(check bool) "trace buffer included" true (List.length snap.Snapshot.events >= 3);
  let j = Snapshot.to_json snap in
  validate_json j;
  (match Snapshot.of_json j with
  | Error e -> Alcotest.failf "decode failed: %s" e
  | Ok snap' -> Alcotest.(check bool) "bit-exact roundtrip" true (snap' = snap));
  (* Encoding is deterministic and the trace buffer stays opt-in. *)
  Alcotest.(check string) "deterministic encode" j (Snapshot.to_json snap);
  let snap2 = Snapshot.of_ctx ~node_id:0 ~now:0.5 obs in
  Alcotest.(check int) "no events unless requested" 0 (List.length snap2.Snapshot.events);
  (match Snapshot.of_json (Snapshot.to_json snap2) with
  | Error e -> Alcotest.failf "decode failed (no trace): %s" e
  | Ok s' -> Alcotest.(check bool) "roundtrip without trace" true (s' = snap2));
  Trace.Phase.stop ph

let find_sub (hay : string) (needle : string) : int option =
  let n = String.length hay and m = String.length needle in
  let rec go i =
    if i + m > n then None else if String.sub hay i m = needle then Some i else go (i + 1)
  in
  go 0

let replace_once ~(sub : string) ~(by : string) (s : string) : string =
  match find_sub s sub with
  | None -> Alcotest.failf "substring %S not found" sub
  | Some i ->
      String.sub s 0 i ^ by ^ String.sub s (i + String.length sub) (String.length s - i - String.length sub)

let test_snapshot_strict_decode () =
  let obs = Ctx.create () in
  Metrics.incr (Metrics.counter (Ctx.metrics obs) "c");
  Metrics.observe (Metrics.histogram (Ctx.metrics obs) ~lo:0. ~hi:1. "h") 0.5;
  let j = Snapshot.to_json (Snapshot.of_ctx ~node_id:1 obs) in
  let ok s = match Snapshot.of_json s with Ok _ -> true | Error _ -> false in
  Alcotest.(check bool) "baseline decodes" true (ok j);
  (* Strictness: schema pinning, unknown fields, trailing bytes. *)
  Alcotest.(check bool) "wrong schema rejected" false
    (ok (replace_once ~sub:"atom-metrics/1" ~by:"atom-metrics/9" j));
  Alcotest.(check bool) "renamed field rejected" false
    (ok (replace_once ~sub:"\"node_id\"" ~by:"\"bogus_id\"" j));
  Alcotest.(check bool) "injected unknown field rejected" false
    (ok (replace_once ~sub:"{\"schema\"" ~by:"{\"extra\":1,\"schema\"" j));
  Alcotest.(check bool) "trailing garbage rejected" false (ok (j ^ "x"));
  Alcotest.(check bool) "not json rejected" false (ok "atom");
  (* Totality: every strict prefix is an [Error], never an exception. *)
  for i = 0 to String.length j - 1 do
    if ok (String.sub j 0 i) then Alcotest.failf "prefix of %d bytes accepted" i
  done

(* ---- leveled logging ---- *)

let test_log_levels () =
  let seen = ref [] in
  Log.set_sink (fun lvl msg -> seen := (lvl, msg) :: !seen);
  (* Off by default: nothing reaches the sink. *)
  Log.debug "dropped %d" 1;
  Log.error "also dropped";
  Alcotest.(check int) "silent by default" 0 (List.length !seen);
  Log.set_level (Some Log.Warn);
  Log.info "below level";
  Log.warn "kept %s" "w";
  Log.error "kept e";
  Log.set_level None;
  Log.reset_sink ();
  Alcotest.(check int) "level filter" 2 (List.length !seen);
  Alcotest.(check bool) "message formatted" true
    (List.exists (fun (_, m) -> m = "kept w") !seen)

(* ---- group-op tallies ---- *)

let test_opcount () =
  let rng = Atom_util.Rng.create 99 in
  let k = G.Scalar.random rng in
  let x = G.pow_gen (G.Scalar.random rng) in
  let s0 = Opcount.snapshot () in
  let (_ : G.t) = G.pow_gen k in
  let (_ : G.t) = G.pow x k in
  let (_ : G.t) = G.pow2 x k x k in
  let (_ : G.t) = G.msm [| (x, k); (x, k); (x, k) |] in
  let (_ : G.t array) = G.pow_batch x [| k; k |] in
  let (_ : G.t array) = G.pow_gen_batch [| k; k; k |] in
  let d = Opcount.diff (Opcount.snapshot ()) s0 in
  Alcotest.(check int) "pow_gen" 1 d.Opcount.pow_gen;
  Alcotest.(check int) "pow" 1 d.Opcount.pow;
  (* Composite calls count once at their own level. *)
  Alcotest.(check int) "pow2" 1 d.Opcount.pow2;
  Alcotest.(check int) "msm calls" 1 d.Opcount.msm_calls;
  Alcotest.(check int) "msm terms" 3 d.Opcount.msm_terms;
  Alcotest.(check int) "batch calls" 2 d.Opcount.batch_calls;
  Alcotest.(check int) "batch scalars" 5 d.Opcount.batch_scalars;
  Alcotest.(check int) "total calls" 6 (Opcount.total_calls d)

(* ---- end-to-end: traced distributed round ---- *)

let traced_round seed =
  let config = Atom_core.Config.tiny ~variant:Atom_core.Config.Trap ~seed () in
  let rng = Atom_util.Rng.create seed in
  let net = Pr.setup rng config () in
  let msgs = List.init 6 (fun i -> Printf.sprintf "traced-%d" i) in
  let subs =
    List.mapi
      (fun i m -> Pr.submit rng net ~user:i ~entry_gid:(i mod config.Atom_core.Config.n_groups) m)
      msgs
  in
  let obs = Ctx.create ~tracing:true () in
  let report =
    Dist.run ~obs ~costs:(Dist.Calibrated Atom_core.Calibration.paper) rng net subs
  in
  (config, net, report, obs)

let test_trace_determinism () =
  let run () =
    let _, _, report, obs = traced_round 11 in
    (report.Dist.latency, Trace.to_chrome_json (Ctx.tracer obs))
  in
  let l1, j1 = run () in
  let l2, j2 = run () in
  Alcotest.(check (float 0.)) "same latency" l1 l2;
  Alcotest.(check string) "byte-identical traces" j1 j2;
  validate_json j1

let test_trace_coverage () =
  let config, net, report, obs = traced_round 11 in
  let evs = Trace.events (Ctx.tracer obs) in
  let iters = net.Pr.topo.Atom_topology.Topology.iterations in
  let n_groups = config.Atom_core.Config.n_groups in
  let iteration_spans =
    List.filter (fun (e : Trace.event) -> e.Trace.cat = "iteration" && e.Trace.ph = 'X') evs
  in
  (* Every (group, iteration) pair gets exactly one span. *)
  Alcotest.(check int) "iteration spans" (n_groups * iters) (List.length iteration_spans);
  let pairs =
    List.sort_uniq compare
      (List.map
         (fun (e : Trace.event) ->
           (List.assoc "group" e.Trace.args, List.assoc "iter" e.Trace.args))
         iteration_spans)
  in
  Alcotest.(check int) "all pairs distinct" (n_groups * iters) (List.length pairs);
  (* The critical track's phase durations sum to the round latency. *)
  match Trace.Breakdown.critical evs with
  | None -> Alcotest.fail "no phase tracks"
  | Some crit ->
      let cover = crit.Trace.Breakdown.total /. report.Dist.latency in
      Alcotest.(check bool)
        (Printf.sprintf "coverage within 1%% (got %.4f)" cover)
        true
        (Float.abs (cover -. 1.) <= 0.01);
      (* The breakdown table renders and agrees with the totals line. *)
      let table =
        Trace.Breakdown.render ~label:"group" ~latency:report.Dist.latency evs
      in
      Alcotest.(check bool) "table mentions every canonical phase seen" true
        (List.for_all
           (fun (name, _) ->
             let needle = name in
             count_occurrences needle table >= 1)
           crit.Trace.Breakdown.phases)

let test_noop_obs_round () =
  (* With the noop context the run still works; churn telemetry reads 0
     because there is no registry to accumulate into (documented caveat). *)
  let config = Atom_core.Config.tiny ~variant:Atom_core.Config.Trap ~seed:11 () in
  let rng = Atom_util.Rng.create 11 in
  let net = Pr.setup rng config () in
  let subs =
    [ Pr.submit rng net ~user:0 ~entry_gid:0 "noop-obs" ]
  in
  let report =
    Dist.run ~obs:Ctx.noop ~costs:(Dist.Calibrated Atom_core.Calibration.paper) rng net subs
  in
  Alcotest.(check bool) "round completes" true (report.Dist.latency > 0.);
  Alcotest.(check int) "no recoveries recorded" 0 report.Dist.faults.Dist.recoveries

(* ---- engine binding ---- *)

let test_engine_virtual_clock () =
  let obs = Ctx.create ~tracing:true () in
  let engine = Atom_sim.Engine.create ~obs () in
  let tr = Ctx.tracer obs in
  Atom_sim.Engine.spawn engine (fun () ->
      Atom_sim.Engine.sleep engine 1.5;
      Trace.with_span tr ~tid:0 "work" (fun () -> Atom_sim.Engine.sleep engine 2.));
  let (_ : float) = Atom_sim.Engine.run engine in
  (match Trace.events tr with
  | [ e ] ->
      Alcotest.(check (float 1e-9)) "span starts at virtual 1.5" 1.5 e.Trace.ts;
      Alcotest.(check (float 1e-9)) "span lasts virtual 2" 2. e.Trace.dur
  | evs -> Alcotest.fail (Printf.sprintf "expected one event, got %d" (List.length evs)));
  Alcotest.(check bool) "engine events counted" true
    (Metrics.counter_value (Ctx.metrics obs) "engine.events" > 0.)

let suite =
  ( "obs",
    [
      Alcotest.test_case "metrics counter+gauge" `Quick test_counter_gauge;
      Alcotest.test_case "metrics histogram" `Quick test_histogram_semantics;
      Alcotest.test_case "metrics noop" `Quick test_noop_registry;
      Alcotest.test_case "span nesting+ordering" `Quick test_span_nesting;
      Alcotest.test_case "phase tiling" `Quick test_phase_tiling;
      Alcotest.test_case "chrome json well-formed" `Quick test_chrome_json_well_formed;
      Alcotest.test_case "merged lanes: pids, labels, offsets" `Quick test_merged_lanes;
      Alcotest.test_case "open phase summary" `Quick test_open_phases;
      Alcotest.test_case "snapshot roundtrip identity" `Quick test_snapshot_roundtrip;
      Alcotest.test_case "snapshot strict decode" `Quick test_snapshot_strict_decode;
      Alcotest.test_case "log levels" `Quick test_log_levels;
      Alcotest.test_case "opcount composite semantics" `Quick test_opcount;
      Alcotest.test_case "trace determinism" `Slow test_trace_determinism;
      Alcotest.test_case "trace coverage + span tree" `Slow test_trace_coverage;
      Alcotest.test_case "noop obs round" `Slow test_noop_obs_round;
      Alcotest.test_case "engine virtual clock binding" `Quick test_engine_virtual_clock;
    ] )
