(* Tests for atom_sim: event ordering, effect-based processes, mailboxes,
   FIFO resources, the compute model, and the network model. *)

open Atom_sim

let feq = Alcotest.(check (float 1e-9))

let test_event_ordering () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~delay:3. (fun () -> log := "c" :: !log);
  Engine.schedule e ~delay:1. (fun () -> log := "a" :: !log);
  Engine.schedule e ~delay:2. (fun () -> log := "b" :: !log);
  (* Ties fire in schedule order. *)
  Engine.schedule e ~delay:1. (fun () -> log := "a2" :: !log);
  let final = Engine.run e in
  feq "final time" 3. final;
  Alcotest.(check (list string)) "order" [ "a"; "a2"; "b"; "c" ] (List.rev !log)

let test_nested_scheduling () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~delay:1. (fun () ->
      log := ("x", Engine.now e) :: !log;
      Engine.schedule e ~delay:0.5 (fun () -> log := ("y", Engine.now e) :: !log));
  ignore (Engine.run e);
  Alcotest.(check (list (pair string (float 1e-9)))) "nested" [ ("x", 1.); ("y", 1.5) ]
    (List.rev !log)

let test_run_until () =
  let e = Engine.create () in
  let fired = ref false in
  Engine.schedule e ~delay:10. (fun () -> fired := true);
  let t = Engine.run ~until:5. e in
  feq "stopped at limit" 5. t;
  Alcotest.(check bool) "event not fired" false !fired

let test_sleep () =
  let e = Engine.create () in
  let times = ref [] in
  Engine.spawn e (fun () ->
      times := Engine.now e :: !times;
      Engine.sleep e 2.5;
      times := Engine.now e :: !times;
      Engine.sleep e 1.5;
      times := Engine.now e :: !times);
  ignore (Engine.run e);
  Alcotest.(check (list (float 1e-9))) "sleep times" [ 0.; 2.5; 4.0 ] (List.rev !times)

let test_mailbox_blocking () =
  let e = Engine.create () in
  let mb = Mailbox.create e in
  let got = ref (-1., -1) in
  Engine.spawn e (fun () ->
      let v = Mailbox.recv mb in
      got := (Engine.now e, v));
  Engine.schedule e ~delay:3. (fun () -> Mailbox.send mb 42);
  ignore (Engine.run e);
  Alcotest.(check (pair (float 1e-9) int)) "blocked until send" (3., 42) !got

let test_mailbox_queued () =
  let e = Engine.create () in
  let mb = Mailbox.create e in
  Mailbox.send mb 1;
  Mailbox.send mb 2;
  let got = ref [] in
  Engine.spawn e (fun () -> got := Mailbox.recv_n mb 2);
  ignore (Engine.run e);
  Alcotest.(check (list int)) "fifo" [ 1; 2 ] !got

let test_mailbox_two_receivers () =
  let e = Engine.create () in
  let mb = Mailbox.create e in
  let got = ref [] in
  for i = 1 to 2 do
    Engine.spawn e (fun () ->
        let v = Mailbox.recv mb in
        got := (i, v, Engine.now e) :: !got)
  done;
  Engine.schedule e ~delay:1. (fun () -> Mailbox.send mb 10);
  Engine.schedule e ~delay:2. (fun () -> Mailbox.send mb 20);
  ignore (Engine.run e);
  Alcotest.(check int) "both received" 2 (List.length !got);
  let values = List.sort compare (List.map (fun (_, v, _) -> v) !got) in
  Alcotest.(check (list int)) "each got one" [ 10; 20 ] values

let test_resource_mutual_exclusion () =
  let e = Engine.create () in
  let r = Resource.create e in
  let spans = ref [] in
  for i = 0 to 2 do
    Engine.spawn e (fun () ->
        Resource.with_resource r (fun () ->
            let start = Engine.now e in
            Engine.sleep e 1.;
            spans := (i, start, Engine.now e) :: !spans))
  done;
  ignore (Engine.run e);
  (* Three unit-length critical sections serialize: total time 3. *)
  let spans = List.rev !spans in
  Alcotest.(check int) "three spans" 3 (List.length spans);
  List.iteri
    (fun k (_, start, stop) ->
      feq "serialized start" (float_of_int k) start;
      feq "serialized stop" (float_of_int (k + 1)) stop)
    spans;
  (* FIFO order: processes acquired in spawn order. *)
  Alcotest.(check (list int)) "fifo order" [ 0; 1; 2 ] (List.map (fun (i, _, _) -> i) spans)

let test_resource_utilization () =
  let e = Engine.create () in
  let r = Resource.create e in
  Engine.spawn e (fun () ->
      Resource.with_resource r (fun () -> Engine.sleep e 2.);
      Engine.sleep e 2.);
  ignore (Engine.run e);
  feq "utilization" 0.5 (Resource.utilization r ~total_time:4.)

let test_machine_compute () =
  let e = Engine.create () in
  let m = Machine.create e ~id:0 ~cores:4 ~bandwidth:1e6 ~cluster:0 in
  let done_at = ref 0. in
  Engine.spawn e (fun () ->
      Machine.compute e m ~serial:1. ~parallel:8.;
      done_at := Engine.now e);
  ignore (Engine.run e);
  (* 1 + 8/4 = 3 *)
  feq "amdahl" 3. !done_at

let test_machine_contention () =
  (* Two groups using the same machine serialize on its CPU. *)
  let e = Engine.create () in
  let m = Machine.create e ~id:0 ~cores:1 ~bandwidth:1e6 ~cluster:0 in
  let finish = ref [] in
  for _ = 1 to 2 do
    Engine.spawn e (fun () ->
        Machine.compute e m ~serial:1. ~parallel:0.;
        finish := Engine.now e :: !finish)
  done;
  ignore (Engine.run e);
  Alcotest.(check (list (float 1e-9))) "serialized" [ 2.; 1. ] !finish

let test_net_latency_model () =
  let e = Engine.create () in
  let net = Net.create e in
  let a = Machine.create e ~id:0 ~cores:4 ~bandwidth:1e9 ~cluster:0 in
  let b = Machine.create e ~id:1 ~cores:4 ~bandwidth:1e9 ~cluster:0 in
  let c = Machine.create e ~id:2 ~cores:4 ~bandwidth:1e9 ~cluster:3 in
  feq "intra cluster" 0.040 (Net.latency net a b);
  let inter = Net.latency net a c in
  Alcotest.(check bool) "inter in range" true (inter >= 0.080 && inter <= 0.160);
  feq "deterministic" inter (Net.latency net a c);
  feq "symmetric" inter (Net.latency net c a)

let test_net_send_timing () =
  let e = Engine.create () in
  let net = Net.create e ~tls_cpu:0. in
  (* 1 MB/s bandwidth: sending 1 MB takes 1 s of serialization. *)
  let a = Machine.create e ~id:0 ~cores:4 ~bandwidth:1e6 ~cluster:0 in
  let b = Machine.create e ~id:1 ~cores:4 ~bandwidth:1e9 ~cluster:0 in
  let mb = Mailbox.create e in
  let arrival = ref 0. in
  Engine.spawn e (fun () -> Net.send net ~src:a ~dst:b ~bytes:1e6 mb "payload");
  Engine.spawn e (fun () ->
      let _ = Mailbox.recv mb in
      arrival := Engine.now e);
  ignore (Engine.run e);
  (* handshake RTT (2×0.04) + serialization 1.0 + propagation 0.04 *)
  feq "arrival" (0.08 +. 1.0 +. 0.04) !arrival;
  Alcotest.(check int) "one connection" 1 net.Net.connections_opened

let test_net_connection_reuse () =
  let e = Engine.create () in
  let net = Net.create e ~tls_cpu:0. in
  let a = Machine.create e ~id:0 ~cores:4 ~bandwidth:1e9 ~cluster:0 in
  let b = Machine.create e ~id:1 ~cores:4 ~bandwidth:1e9 ~cluster:0 in
  let mb = Mailbox.create e in
  Engine.spawn e (fun () ->
      Net.send net ~src:a ~dst:b ~bytes:10. mb 1;
      Net.send net ~src:a ~dst:b ~bytes:10. mb 2);
  ignore (Engine.run e);
  Alcotest.(check int) "handshake once" 1 net.Net.connections_opened

let test_net_dead_destination () =
  let e = Engine.create () in
  let net = Net.create e in
  let a = Machine.create e ~id:0 ~cores:4 ~bandwidth:1e9 ~cluster:0 in
  let b = Machine.create e ~id:1 ~cores:4 ~bandwidth:1e9 ~cluster:0 in
  Machine.fail b;
  let mb = Mailbox.create e in
  Engine.spawn e (fun () -> Net.send net ~src:a ~dst:b ~bytes:10. mb ());
  ignore (Engine.run e);
  Alcotest.(check int) "dropped" 0 (Mailbox.length mb)

let test_paper_fleet_distribution () =
  let rng = Atom_util.Rng.create 99 in
  let n = 20_000 in
  let cores = Array.init n (fun _ -> Machine.paper_cores rng) in
  let frac k = float_of_int (Array.length (Array.of_list (List.filter (( = ) k) (Array.to_list cores)))) /. float_of_int n in
  Alcotest.(check bool) "80% 4-core" true (Float.abs (frac 4 -. 0.80) < 0.02);
  Alcotest.(check bool) "10% 8-core" true (Float.abs (frac 8 -. 0.10) < 0.02);
  Alcotest.(check bool) "5% 16-core" true (Float.abs (frac 16 -. 0.05) < 0.02);
  Alcotest.(check bool) "5% 32-core" true (Float.abs (frac 32 -. 0.05) < 0.02)

let test_determinism () =
  (* Two identical runs produce identical event counts and times. *)
  let run () =
    let e = Engine.create () in
    let net = Net.create e in
    let machines =
      Array.init 8 (fun i -> Machine.create e ~id:i ~cores:4 ~bandwidth:1e8 ~cluster:(i mod 3))
    in
    let mb = Mailbox.create e in
    for i = 0 to 7 do
      Engine.spawn e (fun () ->
          Machine.compute e machines.(i) ~serial:0.001 ~parallel:0.01;
          Net.send net ~src:machines.(i) ~dst:machines.((i + 1) mod 8) ~bytes:1000. mb i)
    done;
    Engine.spawn e (fun () -> ignore (Mailbox.recv_n mb 8));
    let t = Engine.run e in
    (t, Engine.events_run e)
  in
  let a = run () and b = run () in
  Alcotest.(check (pair (float 1e-12) int)) "identical runs" a b

let test_timer_cancellation () =
  (* A cancelled timer never fires, and — crucially for latency reporting —
     does not advance the clock or the event count. *)
  let e = Engine.create () in
  let fired = ref false in
  let t = Engine.schedule_timer e ~delay:100. (fun () -> fired := true) in
  Engine.schedule e ~delay:1. (fun () -> Engine.cancel t);
  let final = Engine.run e in
  Alcotest.(check bool) "cancelled timer silent" false !fired;
  feq "clock stops at the live event" 1. final;
  Alcotest.(check int) "cancelled event not counted" 1 (Engine.events_run e)

let test_recv_timeout_expires () =
  let e = Engine.create () in
  let mb : int Mailbox.t = Mailbox.create e in
  let got = ref (Some 0) in
  let when_ = ref (-1.) in
  Engine.spawn e (fun () ->
      got := Mailbox.recv_timeout mb ~timeout:2.5;
      when_ := Engine.now e);
  ignore (Engine.run e);
  Alcotest.(check bool) "timed out empty-handed" true (!got = None);
  feq "woke exactly at the deadline" 2.5 !when_

let test_recv_timeout_message_wins () =
  (* A send racing the timer wins, and the losing timer leaves no trace in
     the final virtual time. *)
  let e = Engine.create () in
  let mb : int Mailbox.t = Mailbox.create e in
  let got = ref None in
  Engine.spawn e (fun () -> got := Mailbox.recv_timeout mb ~timeout:60.);
  Engine.schedule e ~delay:1. (fun () -> Mailbox.send mb 7);
  let final = Engine.run e in
  Alcotest.(check bool) "received" true (!got = Some 7);
  feq "stale timeout did not inflate latency" 1. final

let test_recv_timeout_queued_value () =
  (* A value already waiting returns immediately, no timer scheduled. *)
  let e = Engine.create () in
  let mb : int Mailbox.t = Mailbox.create e in
  Mailbox.send mb 9;
  let got = ref None in
  Engine.spawn e (fun () -> got := Mailbox.recv_timeout mb ~timeout:5.);
  let final = Engine.run e in
  Alcotest.(check bool) "immediate" true (!got = Some 9);
  feq "no time passed" 0. final

let test_net_retransmit_until_recovery () =
  (* dst is dead at send time and comes back at t=1; backoff retries land
     the message, counted as retransmits, not drops. *)
  let e = Engine.create () in
  let net = Net.create e ~tls_cpu:0. in
  let a = Machine.create e ~id:0 ~cores:4 ~bandwidth:1e9 ~cluster:0 in
  let b = Machine.create e ~id:1 ~cores:4 ~bandwidth:1e9 ~cluster:0 in
  Machine.fail b;
  Engine.schedule e ~delay:1. (fun () -> Machine.recover b);
  let mb = Mailbox.create e in
  let delivered = ref false in
  Engine.spawn e (fun () -> delivered := Net.send_tracked net ~src:a ~dst:b ~bytes:10. mb ());
  ignore (Engine.run e);
  Alcotest.(check bool) "delivered after recovery" true !delivered;
  Alcotest.(check int) "message arrived" 1 (Mailbox.length mb);
  Alcotest.(check bool) "retries were needed" true (net.Net.retransmits > 0);
  Alcotest.(check int) "nothing dropped" 0 net.Net.messages_dropped

let test_net_drop_counters () =
  (* dst never recovers: retries exhaust and the drop is accounted. *)
  let e = Engine.create () in
  let net = Net.create e ~max_retries:3 in
  let a = Machine.create e ~id:0 ~cores:4 ~bandwidth:1e9 ~cluster:0 in
  let b = Machine.create e ~id:1 ~cores:4 ~bandwidth:1e9 ~cluster:0 in
  Machine.fail b;
  let mb = Mailbox.create e in
  let delivered = ref true in
  Engine.spawn e (fun () -> delivered := Net.send_tracked net ~src:a ~dst:b ~bytes:64. mb ());
  ignore (Engine.run e);
  Alcotest.(check bool) "reported dropped" false !delivered;
  Alcotest.(check int) "counted" 1 net.Net.messages_dropped;
  feq "bytes accounted" 64. net.Net.bytes_dropped;
  Alcotest.(check int) "retried max times" 3 net.Net.retransmits

let test_net_loss_deterministic () =
  (* Probabilistic loss replays bit-identically for a fixed loss_seed. *)
  let run () =
    let e = Engine.create () in
    let net = Net.create e ~tls_cpu:0. ~loss_prob:0.4 ~loss_seed:77 in
    let a = Machine.create e ~id:0 ~cores:4 ~bandwidth:1e9 ~cluster:0 in
    let b = Machine.create e ~id:1 ~cores:4 ~bandwidth:1e9 ~cluster:0 in
    let mb = Mailbox.create e in
    Engine.spawn e (fun () ->
        for i = 0 to 19 do
          Net.send net ~src:a ~dst:b ~bytes:10. mb i
        done);
    let t = Engine.run e in
    (t, net.Net.retransmits, net.Net.messages_lost, Mailbox.length mb)
  in
  let (t1, r1, l1, n1) = run () and (t2, r2, l2, n2) = run () in
  Alcotest.(check bool) "losses actually sampled" true (l1 > 0);
  Alcotest.(check int) "all eventually delivered" 20 n1;
  feq "same final time" t1 t2;
  Alcotest.(check int) "same retransmits" r1 r2;
  Alcotest.(check int) "same losses" l1 l2;
  Alcotest.(check int) "same deliveries" n1 n2

let test_heap_stress () =
  (* 10k events scheduled in random order fire in exact time order. *)
  let e = Engine.create () in
  let rng = Atom_util.Rng.create 4242 in
  let fired = ref [] in
  for _ = 1 to 10_000 do
    let t = Atom_util.Rng.float rng *. 1000. in
    Engine.schedule e ~delay:t (fun () -> fired := Engine.now e :: !fired)
  done;
  ignore (Engine.run e);
  let times = Array.of_list (List.rev !fired) in
  Alcotest.(check int) "all fired" 10_000 (Array.length times);
  for i = 1 to Array.length times - 1 do
    if times.(i) < times.(i - 1) then Alcotest.fail "out-of-order event"
  done

let suite =
  ( "sim",
    [
      Alcotest.test_case "event ordering" `Quick test_event_ordering;
      Alcotest.test_case "nested scheduling" `Quick test_nested_scheduling;
      Alcotest.test_case "run until" `Quick test_run_until;
      Alcotest.test_case "process sleep" `Quick test_sleep;
      Alcotest.test_case "mailbox blocking recv" `Quick test_mailbox_blocking;
      Alcotest.test_case "mailbox queueing" `Quick test_mailbox_queued;
      Alcotest.test_case "mailbox two receivers" `Quick test_mailbox_two_receivers;
      Alcotest.test_case "resource mutual exclusion" `Quick test_resource_mutual_exclusion;
      Alcotest.test_case "resource utilization" `Quick test_resource_utilization;
      Alcotest.test_case "machine amdahl" `Quick test_machine_compute;
      Alcotest.test_case "machine contention" `Quick test_machine_contention;
      Alcotest.test_case "net latency model" `Quick test_net_latency_model;
      Alcotest.test_case "net send timing" `Quick test_net_send_timing;
      Alcotest.test_case "net connection reuse" `Quick test_net_connection_reuse;
      Alcotest.test_case "net dead destination" `Quick test_net_dead_destination;
      Alcotest.test_case "timer cancellation" `Quick test_timer_cancellation;
      Alcotest.test_case "recv_timeout expires" `Quick test_recv_timeout_expires;
      Alcotest.test_case "recv_timeout message wins" `Quick test_recv_timeout_message_wins;
      Alcotest.test_case "recv_timeout queued value" `Quick test_recv_timeout_queued_value;
      Alcotest.test_case "net retransmit until recovery" `Quick test_net_retransmit_until_recovery;
      Alcotest.test_case "net drop counters" `Quick test_net_drop_counters;
      Alcotest.test_case "net loss determinism" `Quick test_net_loss_deterministic;
      Alcotest.test_case "paper fleet distribution" `Quick test_paper_fleet_distribution;
      Alcotest.test_case "determinism" `Quick test_determinism;
      Alcotest.test_case "heap stress (10k events)" `Quick test_heap_stress;
    ] )
