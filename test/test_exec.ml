(* The execution engine: determinism of the work-sharing pool and of every
   pooled crypto entry point.

   The pool's contract is that results are bit-identical for every pool
   size, including the no-pool sequential path — that is what lets a
   deployment pick core counts freely without re-validating transcripts.
   These tests pin the contract at three levels: the raw pool primitives,
   the group/ElGamal/shuffle-proof batch APIs across pool sizes 1, 2, 7,
   and a full simulator round whose trace must stay byte-identical when a
   default pool is installed. *)

module Pool = Atom_exec.Pool

(* Run [f] with a temporary pool of [domains], shutting it down after. *)
let with_pool (domains : int) (f : Pool.t -> 'a) : 'a =
  let p = Pool.create ~domains () in
  Fun.protect ~finally:(fun () -> Pool.shutdown p) (fun () -> f p)

let pool_sizes = [ 1; 2; 7 ]

(* ---- pool primitives ---- *)

let test_pool_covers_all_indices () =
  List.iter
    (fun domains ->
      with_pool domains (fun p ->
          let n = 1000 in
          let hits = Array.make n 0 in
          (* Each index writes only its own slot, so no synchronization is
             needed to observe the counts after [run] returns. *)
          Pool.run ~pool:p ~n (fun i -> hits.(i) <- hits.(i) + 1);
          Alcotest.(check bool)
            (Printf.sprintf "every index exactly once (domains=%d)" domains)
            true
            (Array.for_all (fun c -> c = 1) hits)))
    pool_sizes

let test_pool_tabulate_matches_init () =
  let f i = (i * 2654435761) land 0xffffff in
  let want = Array.init 513 f in
  List.iter
    (fun domains ->
      with_pool domains (fun p ->
          Alcotest.(check (array int))
            (Printf.sprintf "tabulate = init (domains=%d)" domains)
            want
            (Pool.tabulate ~pool:p 513 f)))
    pool_sizes

(* [?chunk] changes only scheduling granularity, never results — from a
   single index per cursor fetch to one chunk spanning the whole range. *)
let test_pool_chunk_identity () =
  let f i = (i * 2654435761) land 0xffffff in
  let want = Array.init 513 f in
  List.iter
    (fun domains ->
      with_pool domains (fun p ->
          List.iter
            (fun chunk ->
              Alcotest.(check (array int))
                (Printf.sprintf "tabulate identical (domains=%d chunk=%d)" domains chunk)
                want
                (Pool.tabulate ~pool:p ~chunk 513 f);
              let hits = Array.make 513 0 in
              Pool.run ~pool:p ~chunk ~n:513 (fun i -> hits.(i) <- hits.(i) + 1);
              Alcotest.(check bool)
                (Printf.sprintf "run covers once (domains=%d chunk=%d)" domains chunk)
                true
                (Array.for_all (fun c -> c = 1) hits))
            [ 1; 7; 64; 513; 10_000 ]))
    pool_sizes

(* auto_domains caps by a measured recommendation only when the bench file
   was produced on a host with the same core count. *)
let test_auto_domains_host_guard () =
  let cores = max 1 (min 64 (Domain.recommended_domain_count ())) in
  let dir = Filename.temp_file "atom_bench" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let old = Sys.getenv_opt "ATOM_BENCH_DIR" in
  let old_cwd = Sys.getcwd () in
  let restore () =
    Sys.chdir old_cwd;
    (match old with Some v -> Unix.putenv "ATOM_BENCH_DIR" v | None -> Unix.putenv "ATOM_BENCH_DIR" "");
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Unix.rmdir dir
  in
  Fun.protect ~finally:restore (fun () ->
      (* chdir too: the resolver falls back to ./BENCH_parallel.json, which
         may exist when the tests run from a checkout root *)
      Sys.chdir dir;
      Unix.putenv "ATOM_BENCH_DIR" dir;
      let write json =
        Out_channel.with_open_text (Filename.concat dir "BENCH_parallel.json") (fun oc ->
            Out_channel.output_string oc json)
      in
      (* no file: plain core count *)
      Alcotest.(check int) "no bench file" cores (Pool.auto_domains ());
      (* matching host: the recommendation caps *)
      write
        (Printf.sprintf {|{"schema":"atom-bench-parallel/2","host_cores":%d,"recommended_domains":1}|}
           cores);
      Alcotest.(check int) "matching host caps" (min cores 1) (Pool.auto_domains ());
      (* other hardware: recommendation ignored *)
      write
        (Printf.sprintf {|{"schema":"atom-bench-parallel/2","host_cores":%d,"recommended_domains":1}|}
           (cores + 1));
      Alcotest.(check int) "foreign host ignored" cores (Pool.auto_domains ()))

exception Boom of int

let test_pool_propagates_exception () =
  with_pool 4 (fun p ->
      match Pool.run ~pool:p ~n:200 (fun i -> if i = 137 then raise (Boom i)) with
      | () -> Alcotest.fail "exception swallowed"
      | exception Boom 137 -> ()
      | exception e -> Alcotest.failf "wrong exception: %s" (Printexc.to_string e));
  (* The pool survives a failed job. *)
  with_pool 4 (fun p ->
      ignore (try Pool.run ~pool:p ~n:50 (fun _ -> raise Exit) with Exit -> ());
      let a = Pool.tabulate ~pool:p 100 (fun i -> i + 1) in
      Alcotest.(check int) "pool usable after failure" 100 a.(99))

let test_pool_nested_run_degrades () =
  (* A nested run must complete sequentially rather than deadlock. *)
  with_pool 4 (fun p ->
      let outer = Array.make 64 0 in
      Pool.run ~pool:p ~n:64 (fun i ->
          let inner = Pool.tabulate ~pool:p 16 (fun j -> j * j) in
          outer.(i) <- Array.fold_left ( + ) 0 inner);
      Alcotest.(check bool) "nested results correct" true
        (Array.for_all (fun v -> v = 1240) outer))

(* ---- pooled crypto is bit-identical across pool sizes ---- *)

(* Sequential reference vs pools of 1, 2, 7 for each pooled entry point;
   byte-level equality so Montgomery canonicalization bugs can't hide
   behind [G.equal]. *)
let check_backend (name : string) (g : (module Atom_group.Group_intf.GROUP)) ~(n : int) =
  let module G = (val g) in
  let bytes_of xs = String.concat "" (Array.to_list (Array.map G.to_bytes xs)) in
  let rng = Atom_util.Rng.create 0xe8ec in
  let ks = Array.init n (fun _ -> G.Scalar.random rng) in
  let base = G.random rng in
  let pairs = Array.init n (fun i -> (G.pow_gen ks.((i * 7) mod n), ks.(i))) in
  let ref_gen = bytes_of (G.pow_gen_batch ks) in
  let ref_pow = bytes_of (G.pow_batch base ks) in
  let ref_msm = G.to_bytes (G.msm pairs) in
  List.iter
    (fun domains ->
      with_pool domains (fun p ->
          let tag s = Printf.sprintf "%s %s (domains=%d)" name s domains in
          Alcotest.(check string) (tag "pow_gen_batch") ref_gen
            (bytes_of (G.pow_gen_batch ~pool:p ks));
          Alcotest.(check string) (tag "pow_batch") ref_pow
            (bytes_of (G.pow_batch ~pool:p base ks));
          Alcotest.(check string) (tag "msm") ref_msm (G.to_bytes (G.msm ~pool:p pairs))))
    pool_sizes

let test_pooled_group_ops_identical_zp () =
  check_backend "zp" (Atom_group.Registry.zp_test ()) ~n:150

let test_pooled_group_ops_identical_p256 () =
  (* Past both pooled-MSM thresholds (Straus chunking at 64, Pippenger at
     200) without making the test slow. *)
  check_backend "p256" (Atom_group.Registry.p256 ()) ~n:210

(* Shuffle prove/verify: same seed must yield the same proof bytes and the
   same verdict for every pool size (randomness is drawn on the caller). *)
let test_pooled_shuffle_proof_identical () =
  let module G = (val Atom_group.Registry.zp_test ()) in
  let module El = Atom_elgamal.Elgamal.Make (G) in
  let module Shuf = Atom_zkp.Shuffle_proof.Make (G) (El) in
  let n = 48 in
  let make_proof ?pool () =
    let rng = Atom_util.Rng.create 0x5f1e in
    let kp = El.keygen rng in
    let units =
      Array.init n (fun _ -> fst (El.enc_vec ?pool rng kp.El.pk [| G.random rng; G.random rng |]))
    in
    match El.shuffle_vec ?pool rng kp.El.pk units with
    | None -> Alcotest.fail "shuffle failed"
    | Some (shuffled, witness) ->
        let pi =
          Shuf.prove ?pool rng ~pk:kp.El.pk ~context:"exec-test" ~input:units ~output:shuffled
            ~witness
        in
        (kp.El.pk, units, shuffled, Shuf.to_bytes pi)
  in
  let pk, input, output, ref_bytes = make_proof () in
  let pi = match Shuf.of_bytes ref_bytes with Some pi -> pi | None -> Alcotest.fail "decode" in
  List.iter
    (fun domains ->
      with_pool domains (fun p ->
          let _, _, _, bytes = make_proof ~pool:p () in
          Alcotest.(check string)
            (Printf.sprintf "proof bytes (domains=%d)" domains)
            ref_bytes bytes;
          Alcotest.(check bool)
            (Printf.sprintf "pooled verify accepts (domains=%d)" domains)
            true
            (Shuf.verify ~pool:p ~pk ~context:"exec-test" ~input ~output pi)))
    pool_sizes

(* One shared Zp group instance hammered from several systhreads: the
   per-op scratch checkout in Modarith must keep concurrent threads off
   each other's accumulators. Wrong answers, not crashes, are the failure
   mode scratch corruption would produce. *)
let test_shared_group_systhread_safety () =
  let module G = (val Atom_group.Registry.zp_test ()) in
  let rng = Atom_util.Rng.create 0x7a51 in
  let ks = Array.init 64 (fun _ -> G.Scalar.random rng) in
  let want = Array.map (fun k -> G.to_bytes (G.pow_gen k)) ks in
  let failures = Atomic.make 0 in
  let threads =
    List.init 8 (fun t ->
        Thread.create
          (fun () ->
            for rep = 0 to 19 do
              let i = (t + (rep * 13)) mod Array.length ks in
              if G.to_bytes (G.pow_gen ks.(i)) <> want.(i) then Atomic.incr failures
            done)
          ())
  in
  List.iter Thread.join threads;
  Alcotest.(check int) "no corrupted results" 0 (Atomic.get failures)

(* ---- the simulator round is oblivious to the default pool ---- *)

let traced_round () =
  let seed = 23 in
  let config = Atom_core.Config.tiny ~variant:Atom_core.Config.Nizk ~seed () in
  let module G = (val Atom_group.Registry.zp_test ()) in
  let module Pr = Atom_core.Protocol.Make (G) in
  let module Dist = Atom_core.Distributed.Make (G) (Pr) in
  let rng = Atom_util.Rng.create seed in
  let net = Pr.setup rng config () in
  let subs =
    List.init 6 (fun i ->
        Pr.submit rng net ~user:i
          ~entry_gid:(i mod config.Atom_core.Config.n_groups)
          (Printf.sprintf "pooled-%d" i))
  in
  let obs = Atom_obs.Ctx.create ~tracing:true () in
  let report = Dist.run ~obs ~costs:(Dist.Calibrated Atom_core.Calibration.paper) rng net subs in
  (report.Dist.latency, Atom_obs.Trace.to_chrome_json (Atom_obs.Ctx.tracer obs))

let test_sim_trace_unchanged_with_pool () =
  let prev = Pool.default () in
  let l0, j0 = traced_round () in
  with_pool 3 (fun p ->
      Pool.set_default (Some p);
      Fun.protect
        ~finally:(fun () -> Pool.set_default prev)
        (fun () ->
          let l1, j1 = traced_round () in
          Alcotest.(check (float 0.)) "same virtual latency" l0 l1;
          Alcotest.(check string) "byte-identical trace" j0 j1))

let suite =
  ( "exec",
    [
      Alcotest.test_case "pool covers all indices" `Quick test_pool_covers_all_indices;
      Alcotest.test_case "tabulate matches init" `Quick test_pool_tabulate_matches_init;
      Alcotest.test_case "chunk override identity" `Quick test_pool_chunk_identity;
      Alcotest.test_case "auto_domains host guard" `Quick test_auto_domains_host_guard;
      Alcotest.test_case "exceptions propagate" `Quick test_pool_propagates_exception;
      Alcotest.test_case "nested run degrades" `Quick test_pool_nested_run_degrades;
      Alcotest.test_case "pooled ops identical (zp)" `Quick test_pooled_group_ops_identical_zp;
      Alcotest.test_case "pooled ops identical (p256)" `Slow test_pooled_group_ops_identical_p256;
      Alcotest.test_case "pooled shuffle proof identical" `Quick
        test_pooled_shuffle_proof_identical;
      Alcotest.test_case "shared group across threads" `Quick test_shared_group_systhread_safety;
      Alcotest.test_case "sim trace unchanged with pool" `Quick
        test_sim_trace_unchanged_with_pool;
    ] )
