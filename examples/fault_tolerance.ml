(* Fault tolerance (§4.5): many-trust groups ride out fail-stop churn, and
   buddy groups resurrect a group that lost too many members.

     dune exec examples/fault_tolerance.exe *)

module G = (val Atom_group.Registry.zp_test ())
module Proto = Atom_core.Protocol.Make (G)
module Dist = Atom_core.Distributed.Make (G) (Proto)
open Atom_core

let config : Config.t =
  {
    (Config.tiny ~variant:Config.Trap ~seed:11 ()) with
    Config.n_servers = 16;
    Config.n_groups = 3;
    Config.group_size = 4; (* k = 4 *)
    Config.h = 2; (* tolerate h - 1 = 1 failure; quorum = 3 *)
  }

let run_and_report label rng net msgs =
  let submissions =
    List.mapi
      (fun i m -> Proto.submit rng net ~user:i ~entry_gid:(i mod config.Config.n_groups) m)
      msgs
  in
  let outcome = Proto.run rng net submissions in
  (match outcome.Proto.aborted with
  | None -> Printf.printf "%-28s delivered %d/%d messages\n" label
               (List.length outcome.Proto.delivered) (List.length msgs)
  | Some (Proto.Group_down { gid }) ->
      Printf.printf "%-28s STALLED: group %d lacks a quorum\n" label gid
  | Some _ -> Printf.printf "%-28s aborted\n" label);
  outcome

let () =
  let rng = Atom_util.Rng.create 0xfa17 in
  let net = Proto.setup rng config () in
  Printf.printf
    "many-trust config: k=%d, h=%d => any %d of %d members can route (threshold keys via DVSS)\n\n"
    config.Config.group_size config.Config.h (Config.quorum config) config.Config.group_size;
  let msgs = List.init 6 (fun i -> Printf.sprintf "message %d" i) in

  (* Healthy round. *)
  ignore (run_and_report "all servers up:" rng net msgs);

  (* One member of group 0 crashes: within the tolerance h - 1 = 1. *)
  let victim1 = net.Proto.groups.(0).Proto.members.(1) in
  Proto.fail_server net victim1;
  Printf.printf "\n-- server %d (group 0) fails --\n" victim1;
  ignore (run_and_report "one failure (tolerated):" rng net msgs);

  (* A second member crashes: the group drops below its quorum. *)
  let victim2 = net.Proto.groups.(0).Proto.members.(2) in
  Proto.fail_server net victim2;
  Printf.printf "\n-- server %d (group 0) also fails --\n" victim2;
  ignore (run_and_report "two failures (group down):" rng net msgs);

  (* Buddy-group recovery: replacement servers collect the re-shared
     sub-shares held by the buddy group and reconstruct the dead members'
     key shares. *)
  Printf.printf "\n-- buddy-group recovery for group 0 --\n";
  assert (Proto.recover_group net 0);
  ignore (run_and_report "after recovery:" rng net msgs);

  (* The same story under the distributed runtime: a fault plan kills an
     entire group *mid-round* on the virtual clock, the group detects it
     through receive timeouts, and buddy recovery happens inside the round
     — completing it with degraded latency instead of stalling. *)
  Printf.printf "\n== distributed runtime: churn injected mid-round ==\n";
  let dist_round label faults =
    let rng = Atom_util.Rng.create 0xd15c in
    let net = Proto.setup rng config () in
    let submissions =
      List.mapi
        (fun i m -> Proto.submit rng net ~user:i ~entry_gid:(i mod config.Config.n_groups) m)
        msgs
    in
    let faults = faults net in
    let report =
      Dist.run ~faults ~costs:(Dist.Calibrated Calibration.paper) rng net submissions
    in
    Printf.printf
      "%-28s delivered %d/%d  latency %6.2fs  failures %d  recoveries %d  timeouts %d  retransmits %d\n"
      label
      (List.length report.Dist.outcome.Proto.delivered)
      (List.length msgs) report.Dist.latency report.Dist.faults.Dist.failures_injected
      report.Dist.faults.Dist.recoveries report.Dist.faults.Dist.timeouts_fired
      report.Dist.faults.Dist.retransmits;
    report
  in
  let clean = dist_round "fault-free round:" (fun _ -> []) in
  let faulty =
    dist_round "group 1 dies at t=0.05s:" (fun net ->
        Atom_sim.Faults.fail_machines ~at:0.05 net.Proto.groups.(1).Proto.members)
  in
  (* Recovery runs while the other groups keep mixing, so the time spent
     inside it can exceed the end-to-end slowdown. *)
  Printf.printf "\nrecovery cost: %.2fs inside buddy recovery; round slowed by %.2fs end to end\n"
    faulty.Dist.faults.Dist.recovery_latency
    (faulty.Dist.latency -. clean.Dist.latency)
