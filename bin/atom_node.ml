(* atom_node: one Atom server as a standalone OS process.

   Spawned by `atom_cli cluster` (or by hand): connects to the
   coordinator over loopback TCP, announces its listen port with a Join
   frame, registers the fleet from the coordinator's Peers frame, and
   then runs the event-driven group pipeline ([Atom_rpc.Node]) until the
   coordinator shuts the round down.

   Every node derives the full network key material from --seed, so the
   only bytes on the wire are the protocol's own framed messages. *)

open Cmdliner
open Atom_core

let variant_conv =
  let parse = function
    | "basic" -> Ok Config.Basic
    | "nizk" -> Ok Config.Nizk
    | "trap" -> Ok Config.Trap
    | s -> Error (`Msg (Printf.sprintf "unknown variant %S (basic|nizk|trap)" s))
  in
  let print fmt v =
    Format.pp_print_string fmt
      (match v with Config.Basic -> "basic" | Config.Nizk -> "nizk" | Config.Trap -> "trap")
  in
  Arg.conv (parse, print)

let run node_id coord_port host variant servers groups group_size h iterations msg_bytes seed
    domains recv_timeout max_idle chaos metrics_out trace stats_every verbose ingest
    ingest_rate ingest_burst ingest_pow_bits ingest_queue_cap =
  if verbose then Atom_obs.Log.set_level (Some Atom_obs.Log.Info);
  (* The registry is always live — counters are a load+store, and a node
     must be able to answer Stats_request at any time. Tracing stays
     opt-in: a trace buffer grows with the round. *)
  let obs = Atom_obs.Ctx.create ~tracing:trace () in
  let module G = (val Atom_group.Registry.zp_test ()) in
  (* The node always runs behind the chaos wrapper; an empty spec is a
     passthrough, so the fault-free path pays one extra indirection and
     nothing else. The chaos clock is seconds since process start, so
     --chaos partition windows are node-relative. *)
  let module ChaosT = Atom_rpc.Chaos_transport.Make (Atom_rpc.Tcp_transport.Check) in
  let module Node = Atom_rpc.Node.Make (G) (ChaosT.Check) in
  let chaos_spec =
    match Atom_rpc.Chaos_transport.spec_of_string chaos with
    | Ok s -> s
    | Error m ->
        Printf.eprintf "atom_node: bad --chaos spec: %s\n" m;
        exit 2
  in
  let config =
    {
      Config.variant;
      n_servers = servers;
      n_groups = groups;
      group_size;
      h;
      f = 0.2;
      topology = Config.Square iterations;
      msg_bytes;
      seed;
      mailboxes = 64;
      dummy_mu = 2.;
      dummy_b = 1.;
    }
  in
  Config.validate config;
  let coord = servers in
  (* --domains 0 (the default): honor ATOM_DOMAINS when set, otherwise
     fall back to the measured default — host cores capped by the
     recommended_domains a bench parallel run recorded on matching
     hardware. --domains 1 forces sequential; N > 1 builds a pool. *)
  let pool, own_pool =
    if domains > 1 then (Some (Atom_exec.Pool.create ~domains ()), true)
    else if domains = 1 then (None, false)
    else begin
      match Sys.getenv_opt "ATOM_DOMAINS" with
      | Some _ -> (Atom_exec.Pool.default (), false)
      | None ->
          let d = Atom_exec.Pool.auto_domains () in
          Atom_obs.Log.info "atom_node %d: using %d worker domain%s (measured default)" node_id d
            (if d = 1 then "" else "s");
          if d > 1 then (Some (Atom_exec.Pool.create ~domains:d ()), true) else (None, false)
    end
  in
  (* Bounded send budget: a dead peer costs at most ~2s before the typed
     Send_failed error triggers §4.5 rerouting. *)
  let t = Atom_rpc.Tcp_transport.create ~obs ~host ~node_id ~send_timeout:2.0 () in
  Atom_rpc.Tcp_transport.add_peer t ~node_id:coord ~host ~port:coord_port;
  (* One process-relative wall clock drives everything timestamped here:
     the trace spans, the chaos schedule, and the snapshot [now]. Zero is
     the instant before Join, which is what the coordinator stamps on its
     side to compute this node's lane offset in the merged trace. *)
  let started = Unix.gettimeofday () in
  let clock () = Unix.gettimeofday () -. started in
  (match
     Atom_rpc.Tcp_transport.send t ~dst:coord
       (Atom_wire.Control.encode
          (Atom_wire.Control.Join { node_id; port = Atom_rpc.Tcp_transport.port t }))
   with
  | Ok () -> ()
  | Error e ->
      Printf.eprintf "atom_node: cannot reach coordinator: %s\n"
        (Atom_rpc.Transport.error_to_string e);
      exit 1);
  let ct =
    ChaosT.wrap ~obs ~now:clock
      ~reset:(fun dst -> Atom_rpc.Tcp_transport.reset_peer t ~dst)
      chaos_spec t
  in
  (* atom-metrics/1 snapshot writer (exit dump + optional periodic
     refresh). tmp+rename keeps a reader from ever seeing a torn file;
     the mutex keeps the periodic thread from clobbering the final dump.
     Periodic snapshots skip the trace buffer — it is still growing. *)
  let stop_stats = ref false in
  let stats_mu = Mutex.create () in
  let write_snapshot ~final () =
    match metrics_out with
    | None -> ()
    | Some path -> (
        try
          let snap =
            Atom_obs.Snapshot.of_ctx ~node_id ~now:(clock ())
              ~include_trace:(final && trace) obs
          in
          let tmp = path ^ ".tmp" in
          Out_channel.with_open_bin tmp (fun oc ->
              Out_channel.output_string oc (Atom_obs.Snapshot.to_json snap));
          Sys.rename tmp path
        with _ -> ())
  in
  (match (stats_every, metrics_out) with
  | Some period, Some _ when period > 0. ->
      ignore
        (Thread.create
           (fun () ->
             while not !stop_stats do
               Thread.delay period;
               Mutex.lock stats_mu;
               if not !stop_stats then write_snapshot ~final:false ();
               Mutex.unlock stats_mu
             done)
           ())
  | Some _, None -> Printf.eprintf "atom_node: --stats-every needs --metrics-out; ignoring\n%!"
  | _ -> ());
  (* Ingest mode: accept client Submit frames under an admission policy.
     Clients self-identify with their listen port; registering them as TCP
     peers opens the ack/bulletin return path (ids above the server range
     never enter §4.5 routing). *)
  let ingest_policy =
    if not ingest then None
    else
      Some
        {
          Atom_ingest.Admission.default_policy with
          Atom_ingest.Admission.rate = ingest_rate;
          burst = ingest_burst;
          pow_bits = ingest_pow_bits;
          queue_cap = ingest_queue_cap;
        }
  in
  Node.run_node ~obs ~clock ?pool ct ~config ~node_id ~coord ~recv_timeout ~max_idle
    ~on_peers:(fun peers ->
      Array.iter
        (fun (id, port) ->
          if id <> node_id then Atom_rpc.Tcp_transport.add_peer t ~node_id:id ~host ~port)
        peers)
    ?ingest:ingest_policy
    ~register_client:(fun ~client ~port ->
      Atom_rpc.Tcp_transport.add_peer t ~node_id:client ~host ~port)
    ();
  Atom_rpc.Tcp_transport.close t;
  Mutex.lock stats_mu;
  stop_stats := true;
  write_snapshot ~final:true ();
  Mutex.unlock stats_mu;
  if own_pool then Option.iter Atom_exec.Pool.shutdown pool

let cmd =
  let node_id = Arg.(required & opt (some int) None & info [ "node-id" ] ~doc:"This server's id.") in
  let coord_port =
    Arg.(required & opt (some int) None & info [ "coordinator-port" ] ~doc:"Coordinator TCP port.")
  in
  let host = Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~doc:"Bind/connect address.") in
  let variant = Arg.(value & opt variant_conv Config.Nizk & info [ "variant" ] ~doc:"basic|nizk|trap.") in
  let servers = Arg.(value & opt int 8 & info [ "servers" ] ~doc:"Number of servers.") in
  let groups = Arg.(value & opt int 4 & info [ "groups" ] ~doc:"Number of groups.") in
  let group_size = Arg.(value & opt int 2 & info [ "group-size" ] ~doc:"Servers per group (k).") in
  let h = Arg.(value & opt int 1 & info [ "honest" ] ~doc:"Required honest servers per group (h).") in
  let iterations = Arg.(value & opt int 3 & info [ "iterations" ] ~doc:"Mixing iterations (T).") in
  let msg_bytes = Arg.(value & opt int 32 & info [ "msg-bytes" ] ~doc:"Plaintext size.") in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Deterministic seed.") in
  let domains =
    Arg.(
      value & opt int 0
      & info [ "domains" ]
          ~doc:
            "Worker domains for crypto batches (0 = honor ATOM_DOMAINS when set, otherwise \
             the measured default from BENCH_parallel.json; 1 = sequential).")
  in
  let recv_timeout =
    Arg.(value & opt float 0.5 & info [ "recv-timeout" ] ~doc:"Event-loop poll interval (s).")
  in
  let max_idle =
    Arg.(value & opt int 240 & info [ "max-idle" ] ~doc:"Exit after this many idle polls.")
  in
  let chaos =
    Arg.(
      value & opt string ""
      & info [ "chaos" ]
          ~doc:
            "Fault-injection spec for this node's transport, e.g. \
             'drop=0.02;corrupt=0.01;seed=7;partition=1:3:0,1|2,3'. Empty = no faults.")
  in
  let metrics_out =
    Arg.(
      value & opt (some string) None
      & info [ "metrics-out" ]
          ~doc:"Write this node's atom-metrics/1 JSON snapshot here at exit.")
  in
  let trace =
    Arg.(
      value & flag
      & info [ "trace" ]
          ~doc:
            "Record wall-clock phase/step spans; included in the exit snapshot and served \
             over Stats_request (merged into one cluster trace by atom_cli).")
  in
  let stats_every =
    Arg.(
      value & opt (some float) None
      & info [ "stats-every" ]
          ~doc:"Rewrite the --metrics-out snapshot every $(docv) seconds while running."
          ~docv:"SECONDS")
  in
  let verbose = Arg.(value & flag & info [ "verbose" ] ~doc:"Log node activity to stderr.") in
  let ingest =
    Arg.(
      value & flag
      & info [ "ingest" ]
          ~doc:
            "Accept client submissions directly (Submit frames) under admission control, \
             with epochs sealed by coordinator barriers.")
  in
  let ingest_rate =
    Arg.(value & opt float 10. & info [ "ingest-rate" ] ~doc:"Sustained submissions/sec per client.")
  in
  let ingest_burst =
    Arg.(value & opt float 20. & info [ "ingest-burst" ] ~doc:"Per-client token-bucket depth.")
  in
  let ingest_pow_bits =
    Arg.(
      value & opt int 0
      & info [ "ingest-pow-bits" ] ~doc:"Hashcash difficulty for submissions (0 disables).")
  in
  let ingest_queue_cap =
    Arg.(
      value & opt int 4096
      & info [ "ingest-queue-cap" ] ~doc:"Per-epoch intake queue bound (backpressure above).")
  in
  Cmd.v
    (Cmd.info "atom_node" ~doc:"One Atom server process (spawned by atom_cli cluster).")
    Term.(
      const run $ node_id $ coord_port $ host $ variant $ servers $ groups $ group_size $ h
      $ iterations $ msg_bytes $ seed $ domains $ recv_timeout $ max_idle $ chaos
      $ metrics_out $ trace $ stats_every $ verbose $ ingest $ ingest_rate $ ingest_burst
      $ ingest_pow_bits $ ingest_queue_cap)

let () = exit (Cmd.eval cmd)
