(* atom_cli: drive the Atom library from the command line.

   Subcommands:
   - round       run a full round with real cryptography at a small scale
   - simulate    modeled large-scale run over the discrete-event simulator
   - distributed run the real protocol asynchronously over the simulated network
   - trace       distributed round with virtual-time tracing; Chrome trace JSON
   - sizing      anytrust / many-trust group-size tables (Appendix B)
   - calibrate   measure this host's crypto costs for a group backend *)

open Cmdliner
open Atom_core

(* Shared --metrics plumbing: group-op tallies around a run, plus the
   registry dump when a live one was threaded through. *)
let opcounts_before () = Atom_obs.Opcount.snapshot ()

let print_opcounts before =
  Format.printf "%a@." Atom_obs.Opcount.pp
    (Atom_obs.Opcount.diff (Atom_obs.Opcount.snapshot ()) before)

let print_registry obs = Format.printf "%a@." Atom_obs.Metrics.pp (Atom_obs.Ctx.metrics obs)

(* p50/p90/p99 of per-iteration durations, from the cumulative layer-end
   stamps in [iteration_times]. *)
let print_iteration_percentiles (times : float array) =
  if Array.length times > 0 then begin
    let durs =
      Array.mapi (fun i t -> if i = 0 then t else t -. times.(i - 1)) times
    in
    let p q = Atom_util.Stats.percentile durs q in
    Printf.printf "iteration time p50/p90/p99: %.3f / %.3f / %.3f s\n" (p 50.) (p 90.) (p 99.)
  end

let variant_conv =
  let parse = function
    | "basic" -> Ok Config.Basic
    | "nizk" -> Ok Config.Nizk
    | "trap" -> Ok Config.Trap
    | s -> Error (`Msg (Printf.sprintf "unknown variant %S (basic|nizk|trap)" s))
  in
  let print fmt v =
    Format.pp_print_string fmt
      (match v with Config.Basic -> "basic" | Config.Nizk -> "nizk" | Config.Trap -> "trap")
  in
  Arg.conv (parse, print)

(* ---- round ---- *)

let run_round variant users servers groups group_size h iterations msg_bytes seed fail_count
    metrics =
  let ops0 = opcounts_before () in
  let module G = (val Atom_group.Registry.zp_test ()) in
  let module Pr = Protocol.Make (G) in
  let config =
    {
      Config.variant;
      n_servers = servers;
      n_groups = groups;
      group_size;
      h;
      f = 0.2;
      topology = Config.Square iterations;
      msg_bytes;
      seed;
      mailboxes = 64;
      dummy_mu = 2.;
      dummy_b = 1.;
    }
  in
  Config.validate config;
  let rng = Atom_util.Rng.create seed in
  let t0 = Unix.gettimeofday () in
  let net = Pr.setup rng config () in
  Printf.printf "setup: %d servers, %d groups of %d (quorum %d), width %d elements/unit [%.2fs]\n"
    servers groups group_size (Config.quorum config) net.Pr.width
    (Unix.gettimeofday () -. t0);
  (* Optional fail-stop churn. *)
  for i = 0 to fail_count - 1 do
    let victim = net.Pr.groups.(0).Pr.members.(i) in
    Pr.fail_server net victim;
    Printf.printf "injected fail-stop: server %d (group 0 member %d)\n" victim i
  done;
  let msgs = List.init users (fun i -> Printf.sprintf "anonymous message #%d" i) in
  let t1 = Unix.gettimeofday () in
  let subs =
    List.mapi (fun i m -> Pr.submit rng net ~user:i ~entry_gid:(i mod groups) m) msgs
  in
  let t2 = Unix.gettimeofday () in
  Printf.printf "submissions: %d users encrypted and proven [%.2fs]\n" users (t2 -. t1);
  let outcome = Pr.run rng net subs in
  let t3 = Unix.gettimeofday () in
  Printf.printf "round executed in %.2fs (%.2fs wall total)\n" (t3 -. t2) (t3 -. t0);
  (match outcome.Pr.aborted with
  | None ->
      Printf.printf "delivered %d/%d messages:\n" (List.length outcome.Pr.delivered) users;
      List.iter (fun m -> Printf.printf "  %s\n" m) outcome.Pr.delivered
  | Some _ -> print_endline "round ABORTED (active attack or group failure detected)");
  if outcome.Pr.rejected_submissions <> [] then
    Printf.printf "rejected submissions: %s\n"
      (String.concat ", " (List.map string_of_int outcome.Pr.rejected_submissions));
  if outcome.Pr.blamed <> [] then
    Printf.printf "blamed users: %s\n" (String.concat ", " (List.map string_of_int outcome.Pr.blamed));
  if metrics then print_opcounts ops0

let metrics_flag =
  Arg.(value & flag & info [ "metrics" ] ~doc:"Dump the metrics registry and group-op tallies.")

(* The modeled simulator charges costs without doing real group ops, so
   its flag doesn't promise tallies. *)
let sim_metrics_flag =
  Arg.(value & flag & info [ "metrics" ] ~doc:"Dump the metrics registry.")

let round_cmd =
  let users = Arg.(value & opt int 8 & info [ "users" ] ~doc:"Number of users.") in
  let variant = Arg.(value & opt variant_conv Config.Trap & info [ "variant" ] ~doc:"basic|nizk|trap.") in
  let servers = Arg.(value & opt int 12 & info [ "servers" ] ~doc:"Number of servers.") in
  let groups = Arg.(value & opt int 4 & info [ "groups" ] ~doc:"Number of groups.") in
  let group_size = Arg.(value & opt int 3 & info [ "group-size" ] ~doc:"Servers per group (k).") in
  let h = Arg.(value & opt int 1 & info [ "honest" ] ~doc:"Required honest servers per group (h).") in
  let iterations = Arg.(value & opt int 4 & info [ "iterations" ] ~doc:"Mixing iterations (T).") in
  let msg_bytes = Arg.(value & opt int 32 & info [ "msg-bytes" ] ~doc:"Plaintext size.") in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Deterministic seed.") in
  let fail = Arg.(value & opt int 0 & info [ "fail" ] ~doc:"Fail-stop this many servers of group 0.") in
  Cmd.v
    (Cmd.info "round" ~doc:"Run one protocol round with real cryptography (small scale).")
    Term.(
      const run_round $ variant $ users $ servers $ groups $ group_size $ h $ iterations
      $ msg_bytes $ seed $ fail $ metrics_flag)

(* ---- simulate ---- *)

let run_simulate app servers messages measured metrics =
  let config = { Config.paper_default with Config.n_servers = servers; Config.n_groups = servers } in
  let cal =
    if measured then Calibration.measure (Atom_group.Registry.zp_test ()) ()
    else Calibration.paper
  in
  let params =
    match app with
    | "microblog" -> Simulate.microblog ~cal config ~n_messages:messages
    | "dialing" -> Simulate.dialing ~cal config ~n_messages:messages
    | other -> failwith (Printf.sprintf "unknown app %S (microblog|dialing)" other)
  in
  Format.printf "%a@." Calibration.pp cal;
  let obs = if metrics then Atom_obs.Ctx.create () else Atom_obs.Ctx.noop in
  let r = Simulate.run ~obs params in
  Printf.printf
    "latency: %.1f s (%.1f min)\nDES events: %d\nconnections: %d\nbytes on the wire: %.3e\n"
    r.Simulate.latency (r.Simulate.latency /. 60.) r.Simulate.events r.Simulate.connections
    r.Simulate.bytes_sent;
  print_iteration_percentiles r.Simulate.iteration_times;
  if metrics then print_registry obs

let simulate_cmd =
  let app_arg = Arg.(value & opt string "microblog" & info [ "app" ] ~doc:"microblog|dialing.") in
  let servers = Arg.(value & opt int 1024 & info [ "servers" ] ~doc:"Network size.") in
  let messages = Arg.(value & opt int 1_000_000 & info [ "messages" ] ~doc:"Messages per round.") in
  let measured =
    Arg.(value & flag & info [ "measured" ] ~doc:"Calibrate with this host's costs instead of Table 3.")
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Modeled large-scale round over the discrete-event simulator.")
    Term.(const run_simulate $ app_arg $ servers $ messages $ measured $ sim_metrics_flag)

(* ---- distributed ---- *)

(* Fault-plan construction shared by [distributed] and [trace]: kill a
   whole group and/or a random fraction of the fleet at [fail_at]. The
   group membership lookup needs the protocol network, so the builder is
   applied after setup. *)
let build_fault_plan ~(config : Config.t) ~seed ~kill_group ~kill_fraction ~fail_at
    (group_members : int -> int array) : Atom_sim.Faults.plan =
  (match kill_group with
  | Some gid when gid < 0 || gid >= config.Config.n_groups ->
      failwith
        (Printf.sprintf "--kill-group %d: group ids are 0..%d" gid (config.Config.n_groups - 1))
  | Some gid -> Atom_sim.Faults.fail_machines ~at:fail_at (group_members gid)
  | None -> [])
  @
  match kill_fraction with
  | Some fraction ->
      Atom_sim.Faults.fail_fraction
        (Atom_util.Rng.create (seed lxor 0xc4a5))
        ~at:fail_at ~fraction ~n:config.Config.n_servers
  | None -> []

let run_distributed users seed kill_group kill_fraction fail_at loss metrics =
  let ops0 = opcounts_before () in
  let module G = (val Atom_group.Registry.zp_test ()) in
  let module Pr = Protocol.Make (G) in
  let module Dist = Distributed.Make (G) (Pr) in
  let config = Config.tiny ~variant:Config.Trap ~seed () in
  let rng = Atom_util.Rng.create seed in
  let net = Pr.setup rng config () in
  let msgs = List.init users (fun i -> Printf.sprintf "distributed message #%d" i) in
  let subs =
    List.mapi (fun i m -> Pr.submit rng net ~user:i ~entry_gid:(i mod config.Config.n_groups) m) msgs
  in
  let faults =
    build_fault_plan ~config ~seed ~kill_group ~kill_fraction ~fail_at (fun gid ->
        net.Pr.groups.(gid).Pr.members)
  in
  (* Injected churn makes latency the interesting output: charge calibrated
     per-op costs so the number is reproducible across hosts. *)
  let costs = if faults = [] && loss = 0. then Dist.Measured else Dist.Calibrated Calibration.paper in
  let obs = Atom_obs.Ctx.create () in
  let t0 = Unix.gettimeofday () in
  let report = Dist.run ~obs ~faults ~loss_prob:loss ~costs rng net subs in
  Printf.printf
    "real crypto over simulated network: %d messages through %d groups in %.3f virtual s\n(%d DES events, %.0f bytes on the wire, %.2f s wall)\n"
    (List.length report.Dist.outcome.Pr.delivered)
    config.Config.n_groups report.Dist.latency report.Dist.events report.Dist.bytes_sent
    (Unix.gettimeofday () -. t0);
  let f = report.Dist.faults in
  if faults <> [] || loss > 0. then
    Printf.printf
      "churn: %d failures injected, %d recoveries (%.2fs inside recovery), %d timeouts, %d retransmits, %d drops\n"
      f.Dist.failures_injected f.Dist.recoveries f.Dist.recovery_latency f.Dist.timeouts_fired
      f.Dist.retransmits f.Dist.messages_dropped;
  (match report.Dist.abort_error with
  | Some err -> Printf.printf "pipeline error: %s\n" err
  | None -> ());
  List.iter (fun m -> Printf.printf "  %s\n" m) report.Dist.outcome.Pr.delivered;
  if metrics then begin
    print_registry obs;
    print_opcounts ops0
  end

let distributed_cmd =
  let users = Arg.(value & opt int 8 & info [ "users" ] ~doc:"Number of users.") in
  let seed = Arg.(value & opt int 7 & info [ "seed" ] ~doc:"Deterministic seed.") in
  let kill_group =
    Arg.(value & opt (some int) None & info [ "kill-group" ] ~doc:"Fail every member of this group mid-round.")
  in
  let kill_fraction =
    Arg.(value & opt (some float) None & info [ "kill-fraction" ] ~doc:"Fail a random fraction of all servers mid-round.")
  in
  let fail_at =
    Arg.(value & opt float 0.05 & info [ "fail-at" ] ~doc:"Virtual time (s) at which injected failures fire.")
  in
  let loss =
    Arg.(value & opt float 0. & info [ "loss" ] ~doc:"Per-message loss probability on every link.")
  in
  Cmd.v
    (Cmd.info "distributed"
       ~doc:"Run the real protocol asynchronously over the simulated network.")
    Term.(
      const run_distributed $ users $ seed $ kill_group $ kill_fraction $ fail_at $ loss
      $ metrics_flag)

(* ---- trace ---- *)

let run_trace scenario users seed kill_group kill_fraction fail_at loss out metrics =
  let ops0 = opcounts_before () in
  let module G = (val Atom_group.Registry.zp_test ()) in
  let module Pr = Protocol.Make (G) in
  let module Dist = Distributed.Make (G) (Pr) in
  let config =
    match scenario with
    | "microblog" -> Config.tiny ~variant:Config.Trap ~seed ()
    | "dialing" -> { (Config.tiny ~variant:Config.Basic ~seed ()) with Config.msg_bytes = 80 }
    | other -> failwith (Printf.sprintf "unknown scenario %S (microblog|dialing)" other)
  in
  let rng = Atom_util.Rng.create seed in
  let net = Pr.setup rng config () in
  let msgs = List.init users (fun i -> Printf.sprintf "traced message #%d" i) in
  let subs =
    List.mapi (fun i m -> Pr.submit rng net ~user:i ~entry_gid:(i mod config.Config.n_groups) m) msgs
  in
  let faults =
    build_fault_plan ~config ~seed ~kill_group ~kill_fraction ~fail_at (fun gid ->
        net.Pr.groups.(gid).Pr.members)
  in
  (* Always calibrated: the trace is a pure function of (seed, fault plan),
     so two identical invocations serialize byte-identical JSON. *)
  let obs = Atom_obs.Ctx.create ~tracing:true () in
  let report =
    Dist.run ~obs ~faults ~loss_prob:loss ~costs:(Dist.Calibrated Calibration.paper) rng net subs
  in
  let tracer = Atom_obs.Ctx.tracer obs in
  let events = Atom_obs.Trace.events tracer in
  Printf.printf "%s: %d messages, %d groups, %d delivered; %.3f virtual s, %d trace events\n"
    scenario users config.Config.n_groups
    (List.length report.Dist.outcome.Pr.delivered)
    report.Dist.latency
    (Atom_obs.Trace.event_count tracer);
  (match report.Dist.abort_error with
  | Some err -> Printf.printf "pipeline error: %s\n" err
  | None -> ());
  print_string (Atom_obs.Trace.Breakdown.render ~label:"group" ~latency:report.Dist.latency events);
  (match out with
  | Some path ->
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc (Atom_obs.Trace.to_chrome_json tracer));
      Printf.printf "wrote %s (load it at https://ui.perfetto.dev or chrome://tracing)\n" path
  | None -> ());
  if metrics then begin
    print_registry obs;
    print_opcounts ops0
  end

let trace_cmd =
  let scenario =
    Arg.(value & pos 0 string "microblog" & info [] ~docv:"SCENARIO" ~doc:"microblog|dialing.")
  in
  let users = Arg.(value & opt int 8 & info [ "users" ] ~doc:"Number of users.") in
  let seed = Arg.(value & opt int 7 & info [ "seed" ] ~doc:"Deterministic seed.") in
  let kill_group =
    Arg.(value & opt (some int) None & info [ "kill-group" ] ~doc:"Fail every member of this group mid-round.")
  in
  let kill_fraction =
    Arg.(value & opt (some float) None & info [ "kill-fraction" ] ~doc:"Fail a random fraction of all servers mid-round.")
  in
  let fail_at =
    Arg.(value & opt float 0.05 & info [ "fail-at" ] ~doc:"Virtual time (s) at which injected failures fire.")
  in
  let loss =
    Arg.(value & opt float 0. & info [ "loss" ] ~doc:"Per-message loss probability on every link.")
  in
  let out =
    Arg.(value & opt (some string) None & info [ "out" ] ~doc:"Write Chrome trace_event JSON here.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Distributed round with virtual-time tracing: per-phase breakdown on stdout, \
             Perfetto-loadable trace JSON with --out.")
    Term.(
      const run_trace $ scenario $ users $ seed $ kill_group $ kill_fraction $ fail_at $ loss
      $ out $ metrics_flag)

(* ---- cluster ---- *)

let variant_name = function
  | Config.Basic -> "basic"
  | Config.Nizk -> "nizk"
  | Config.Trap -> "trap"

(* Spawn N atom_node processes on loopback, drive a full round over real
   TCP, and check the published plaintexts against the single-process
   reference run for the same seed. *)
let run_cluster variant users servers groups group_size h iterations msg_bytes seed domains
    node_bin timeout metrics metrics_out log_dir =
  let ops0 = opcounts_before () in
  let module G = (val Atom_group.Registry.zp_test ()) in
  let module Node = Atom_rpc.Node.Make (G) (Atom_rpc.Tcp_transport.Check) in
  let module Tcp = Atom_rpc.Tcp_transport in
  let module Ctrl = Atom_wire.Control in
  let config =
    {
      Config.variant;
      n_servers = servers;
      n_groups = groups;
      group_size;
      h;
      f = 0.2;
      topology = Config.Square iterations;
      msg_bytes;
      seed;
      mailboxes = 64;
      dummy_mu = 2.;
      dummy_b = 1.;
    }
  in
  Config.validate config;
  let obs =
    if metrics || metrics_out <> None then Atom_obs.Ctx.create () else Atom_obs.Ctx.noop
  in
  let coord = servers in
  let t = Tcp.create ~obs ~node_id:coord () in
  let port = Tcp.port t in
  let node_bin =
    match node_bin with
    | Some p -> p
    | None ->
        (* Sibling of this binary; dune names it atom_node.exe, an
           installed copy plain atom_node. *)
        let dir = Filename.dirname Sys.executable_name in
        let exe = Filename.concat dir "atom_node.exe" in
        if Sys.file_exists exe then exe else Filename.concat dir "atom_node"
  in
  let t0 = Unix.gettimeofday () in
  let poll = 0.2 in
  (match log_dir with
  | Some dir when not (Sys.file_exists dir) -> Unix.mkdir dir 0o755
  | _ -> ());
  let pids =
    Array.init servers (fun i ->
        let args =
          [|
            node_bin; "--node-id"; string_of_int i;
            "--coordinator-port"; string_of_int port;
            "--variant"; variant_name variant;
            "--servers"; string_of_int servers;
            "--groups"; string_of_int groups;
            "--group-size"; string_of_int group_size;
            "--honest"; string_of_int h;
            "--iterations"; string_of_int iterations;
            "--msg-bytes"; string_of_int msg_bytes;
            "--seed"; string_of_int seed;
            "--domains"; string_of_int domains;
            "--recv-timeout"; Printf.sprintf "%g" poll;
            "--max-idle"; string_of_int (max 1 (int_of_float (timeout /. poll)));
          |]
        in
        match log_dir with
        | None -> Unix.create_process node_bin args Unix.stdin Unix.stdout Unix.stderr
        | Some dir ->
            let log =
              Unix.openfile
                (Filename.concat dir (Printf.sprintf "node-%d.log" i))
                [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
            in
            let pid =
              Unix.create_process node_bin (Array.append args [| "--verbose" |]) Unix.stdin log
                log
            in
            Unix.close log;
            pid)
  in
  let reap ~kill =
    let deadline = Unix.gettimeofday () +. 5. in
    let remaining = ref (Array.to_list pids) in
    while !remaining <> [] && Unix.gettimeofday () < deadline do
      remaining :=
        List.filter
          (fun pid -> match Unix.waitpid [ Unix.WNOHANG ] pid with 0, _ -> true | _ -> false)
          !remaining;
      if !remaining <> [] && not kill then Unix.sleepf 0.05
      else if !remaining <> [] then begin
        List.iter (fun pid -> try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ()) !remaining
      end
    done;
    List.iter
      (fun pid ->
        (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
        try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
      !remaining
  in
  let die msg =
    Printf.printf "cluster FAILED: %s\n" msg;
    reap ~kill:true;
    Tcp.close t;
    exit 1
  in
  (* Bring-up: every node joins with its listen port, learns the fleet,
     and acks — only then does protocol traffic start. *)
  let deadline = Unix.gettimeofday () +. timeout in
  let ports = Hashtbl.create servers in
  while Hashtbl.length ports < servers && Unix.gettimeofday () < deadline do
    match Tcp.recv t ~timeout:0.5 with
    | Ok (_, frame) -> (
        match Ctrl.decode frame with
        | Some (Ctrl.Join { node_id; port }) ->
            Hashtbl.replace ports node_id port;
            Tcp.add_peer t ~node_id ~host:"127.0.0.1" ~port
        | _ -> ())
    | Error _ -> ()
  done;
  if Hashtbl.length ports < servers then
    die (Printf.sprintf "%d/%d nodes joined before timeout" (Hashtbl.length ports) servers);
  let peers = Array.init servers (fun i -> (i, Hashtbl.find ports i)) in
  for i = 0 to servers - 1 do
    match Tcp.send t ~dst:i (Ctrl.encode (Ctrl.Peers { peers })) with
    | Ok () -> ()
    | Error e ->
        die
          (Printf.sprintf "peer list to node %d: %s" i (Atom_rpc.Transport.error_to_string e))
  done;
  let acked = ref 0 in
  while !acked < servers && Unix.gettimeofday () < deadline do
    match Tcp.recv t ~timeout:0.5 with
    | Ok (_, frame) -> (
        match Ctrl.decode frame with Some (Ctrl.Ack _) -> incr acked | _ -> ())
    | Error _ -> ()
  done;
  if !acked < servers then die (Printf.sprintf "%d/%d nodes acked the peer list" !acked servers);
  Printf.printf "cluster: %d node processes on loopback (coordinator port %d) [%.2fs]\n" servers
    port
    (Unix.gettimeofday () -. t0);
  let pool = if domains > 1 then Some (Atom_exec.Pool.create ~domains ()) else None in
  let result =
    Node.run_coordinator ?pool t ~config ~users ~recv_timeout:0.25
      ~max_idle:(max 1 (int_of_float (timeout /. 0.25)))
      ()
  in
  Option.iter Atom_exec.Pool.shutdown pool;
  reap ~kill:false;
  Tcp.close t;
  Printf.printf "cluster round: %d/%d messages delivered over TCP in %.2fs wall\n"
    (List.length result.Node.delivered) users
    (Unix.gettimeofday () -. t0);
  (match result.Node.cluster_abort with
  | Some d -> Printf.printf "cluster ABORTED: %s\n" d
  | None -> ());
  if result.Node.rejected_submissions <> [] then
    Printf.printf "rejected submissions: %s\n"
      (String.concat ", " (List.map string_of_int result.Node.rejected_submissions));
  List.iter (fun m -> Printf.printf "  %s\n" m) result.Node.delivered;
  print_endline
    (if result.Node.matched then
       "MATCH: cluster output equals the single-process reference"
     else "MISMATCH: cluster output differs from the single-process reference");
  (match metrics_out with
  | Some path ->
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc
            (Format.asprintf "%a" Atom_obs.Metrics.pp (Atom_obs.Ctx.metrics obs)));
      Printf.printf "wrote %s\n" path
  | None -> ());
  if metrics then begin
    print_registry obs;
    print_opcounts ops0
  end;
  if not result.Node.matched then exit 1

let cluster_cmd =
  let users = Arg.(value & opt int 16 & info [ "users" ] ~doc:"Number of users.") in
  let variant =
    Arg.(value & opt variant_conv Config.Nizk & info [ "variant" ] ~doc:"basic|nizk|trap.")
  in
  let servers = Arg.(value & opt int 8 & info [ "servers" ] ~doc:"Node processes to spawn.") in
  let groups = Arg.(value & opt int 4 & info [ "groups" ] ~doc:"Number of groups.") in
  let group_size = Arg.(value & opt int 2 & info [ "group-size" ] ~doc:"Servers per group (k).") in
  let h = Arg.(value & opt int 1 & info [ "honest" ] ~doc:"Required honest servers per group (h).") in
  let iterations = Arg.(value & opt int 3 & info [ "iterations" ] ~doc:"Mixing iterations (T).") in
  let msg_bytes = Arg.(value & opt int 32 & info [ "msg-bytes" ] ~doc:"Plaintext size.") in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Deterministic seed.") in
  let domains =
    Arg.(
      value & opt int 0
      & info [ "domains" ]
          ~doc:"Worker domains per node for crypto batches (0 = honor ATOM_DOMAINS).")
  in
  let node_bin =
    Arg.(value & opt (some string) None & info [ "node-bin" ] ~doc:"Path to the atom_node binary.")
  in
  let timeout =
    Arg.(value & opt float 120. & info [ "timeout" ] ~doc:"Per-phase timeout budget (s).")
  in
  let metrics_out =
    Arg.(value & opt (some string) None & info [ "metrics-out" ] ~doc:"Write the coordinator metrics dump here.")
  in
  let log_dir =
    Arg.(value & opt (some string) None & info [ "log-dir" ] ~doc:"Per-node verbose logs go here.")
  in
  Cmd.v
    (Cmd.info "cluster"
       ~doc:"Spawn N atom_node processes on loopback, run a round over real TCP, and check \
             the output against the single-process reference.")
    Term.(
      const run_cluster $ variant $ users $ servers $ groups $ group_size $ h $ iterations
      $ msg_bytes $ seed $ domains $ node_bin $ timeout $ metrics_flag $ metrics_out $ log_dir)

(* ---- sizing ---- *)

let run_sizing f groups bits h_max =
  Printf.printf "adversarial fraction f=%.2f, %d groups, 2^-%d failure budget\n" f groups bits;
  Printf.printf "%-4s %10s\n" "h" "k";
  for h = 1 to h_max do
    Printf.printf "%-4d %10d\n" h
      (Atom_topology.Group_sizing.required_group_size ~f ~groups ~h ~security_bits:bits ())
  done

let sizing_cmd =
  let f = Arg.(value & opt float 0.2 & info [ "f" ] ~doc:"Adversarial fraction.") in
  let groups = Arg.(value & opt int 1024 & info [ "groups" ] ~doc:"Number of groups.") in
  let bits = Arg.(value & opt int 64 & info [ "bits" ] ~doc:"Security bits.") in
  let h_max = Arg.(value & opt int 20 & info [ "h-max" ] ~doc:"Largest h to tabulate.") in
  Cmd.v
    (Cmd.info "sizing" ~doc:"Anytrust / many-trust group sizing (Appendix B).")
    Term.(const run_sizing $ f $ groups $ bits $ h_max)

(* ---- calibrate ---- *)

let run_calibrate backend =
  let g = Atom_group.Registry.by_name backend in
  Format.printf "%a@." Calibration.pp (Calibration.measure g ())

let calibrate_cmd =
  let backend =
    Arg.(value & opt string "zp-test" & info [ "group" ] ~doc:"p256|zp-test|zp-medium.")
  in
  Cmd.v
    (Cmd.info "calibrate" ~doc:"Measure this host's cryptographic costs.")
    Term.(const run_calibrate $ backend)

let () =
  let info = Cmd.info "atom_cli" ~doc:"Atom: horizontally scaling strong anonymity." in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            round_cmd; simulate_cmd; distributed_cmd; trace_cmd; cluster_cmd; sizing_cmd;
            calibrate_cmd;
          ]))
