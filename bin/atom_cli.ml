(* atom_cli: drive the Atom library from the command line.

   Subcommands:
   - round       run a full round with real cryptography at a small scale
   - simulate    modeled large-scale run over the discrete-event simulator
   - distributed run the real protocol asynchronously over the simulated network
   - trace       distributed round with virtual-time tracing; Chrome trace JSON
   - sizing      anytrust / many-trust group-size tables (Appendix B)
   - calibrate   measure this host's crypto costs for a group backend *)

open Cmdliner
open Atom_core

(* Shared --metrics plumbing: group-op tallies around a run, plus the
   registry dump when a live one was threaded through. *)
let opcounts_before () = Atom_obs.Opcount.snapshot ()

let print_opcounts before =
  Format.printf "%a@." Atom_obs.Opcount.pp
    (Atom_obs.Opcount.diff (Atom_obs.Opcount.snapshot ()) before)

let print_registry obs = Format.printf "%a@." Atom_obs.Metrics.pp (Atom_obs.Ctx.metrics obs)

(* p50/p90/p99 of per-iteration durations, from the cumulative layer-end
   stamps in [iteration_times]. *)
let print_iteration_percentiles (times : float array) =
  if Array.length times > 0 then begin
    let durs =
      Array.mapi (fun i t -> if i = 0 then t else t -. times.(i - 1)) times
    in
    let p q = Atom_util.Stats.percentile durs q in
    Printf.printf "iteration time p50/p90/p99: %.3f / %.3f / %.3f s\n" (p 50.) (p 90.) (p 99.)
  end

let variant_conv =
  let parse = function
    | "basic" -> Ok Config.Basic
    | "nizk" -> Ok Config.Nizk
    | "trap" -> Ok Config.Trap
    | s -> Error (`Msg (Printf.sprintf "unknown variant %S (basic|nizk|trap)" s))
  in
  let print fmt v =
    Format.pp_print_string fmt
      (match v with Config.Basic -> "basic" | Config.Nizk -> "nizk" | Config.Trap -> "trap")
  in
  Arg.conv (parse, print)

(* ---- round ---- *)

let run_round variant users servers groups group_size h iterations msg_bytes seed fail_count
    metrics =
  let ops0 = opcounts_before () in
  let module G = (val Atom_group.Registry.zp_test ()) in
  let module Pr = Protocol.Make (G) in
  let config =
    {
      Config.variant;
      n_servers = servers;
      n_groups = groups;
      group_size;
      h;
      f = 0.2;
      topology = Config.Square iterations;
      msg_bytes;
      seed;
      mailboxes = 64;
      dummy_mu = 2.;
      dummy_b = 1.;
    }
  in
  Config.validate config;
  let rng = Atom_util.Rng.create seed in
  let t0 = Unix.gettimeofday () in
  let net = Pr.setup rng config () in
  Printf.printf "setup: %d servers, %d groups of %d (quorum %d), width %d elements/unit [%.2fs]\n"
    servers groups group_size (Config.quorum config) net.Pr.width
    (Unix.gettimeofday () -. t0);
  (* Optional fail-stop churn. *)
  for i = 0 to fail_count - 1 do
    let victim = net.Pr.groups.(0).Pr.members.(i) in
    Pr.fail_server net victim;
    Printf.printf "injected fail-stop: server %d (group 0 member %d)\n" victim i
  done;
  let msgs = List.init users (fun i -> Printf.sprintf "anonymous message #%d" i) in
  let t1 = Unix.gettimeofday () in
  let subs =
    List.mapi (fun i m -> Pr.submit rng net ~user:i ~entry_gid:(i mod groups) m) msgs
  in
  let t2 = Unix.gettimeofday () in
  Printf.printf "submissions: %d users encrypted and proven [%.2fs]\n" users (t2 -. t1);
  let outcome = Pr.run rng net subs in
  let t3 = Unix.gettimeofday () in
  Printf.printf "round executed in %.2fs (%.2fs wall total)\n" (t3 -. t2) (t3 -. t0);
  (match outcome.Pr.aborted with
  | None ->
      Printf.printf "delivered %d/%d messages:\n" (List.length outcome.Pr.delivered) users;
      List.iter (fun m -> Printf.printf "  %s\n" m) outcome.Pr.delivered
  | Some _ -> print_endline "round ABORTED (active attack or group failure detected)");
  if outcome.Pr.rejected_submissions <> [] then
    Printf.printf "rejected submissions: %s\n"
      (String.concat ", " (List.map string_of_int outcome.Pr.rejected_submissions));
  if outcome.Pr.blamed <> [] then
    Printf.printf "blamed users: %s\n" (String.concat ", " (List.map string_of_int outcome.Pr.blamed));
  if metrics then print_opcounts ops0

let metrics_flag =
  Arg.(value & flag & info [ "metrics" ] ~doc:"Dump the metrics registry and group-op tallies.")

(* The modeled simulator charges costs without doing real group ops, so
   its flag doesn't promise tallies. *)
let sim_metrics_flag =
  Arg.(value & flag & info [ "metrics" ] ~doc:"Dump the metrics registry.")

let round_cmd =
  let users = Arg.(value & opt int 8 & info [ "users" ] ~doc:"Number of users.") in
  let variant = Arg.(value & opt variant_conv Config.Trap & info [ "variant" ] ~doc:"basic|nizk|trap.") in
  let servers = Arg.(value & opt int 12 & info [ "servers" ] ~doc:"Number of servers.") in
  let groups = Arg.(value & opt int 4 & info [ "groups" ] ~doc:"Number of groups.") in
  let group_size = Arg.(value & opt int 3 & info [ "group-size" ] ~doc:"Servers per group (k).") in
  let h = Arg.(value & opt int 1 & info [ "honest" ] ~doc:"Required honest servers per group (h).") in
  let iterations = Arg.(value & opt int 4 & info [ "iterations" ] ~doc:"Mixing iterations (T).") in
  let msg_bytes = Arg.(value & opt int 32 & info [ "msg-bytes" ] ~doc:"Plaintext size.") in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Deterministic seed.") in
  let fail = Arg.(value & opt int 0 & info [ "fail" ] ~doc:"Fail-stop this many servers of group 0.") in
  Cmd.v
    (Cmd.info "round" ~doc:"Run one protocol round with real cryptography (small scale).")
    Term.(
      const run_round $ variant $ users $ servers $ groups $ group_size $ h $ iterations
      $ msg_bytes $ seed $ fail $ metrics_flag)

(* ---- simulate ---- *)

let run_simulate app servers messages measured metrics =
  let config = { Config.paper_default with Config.n_servers = servers; Config.n_groups = servers } in
  let cal =
    if measured then Calibration.measure (Atom_group.Registry.zp_test ()) ()
    else Calibration.paper
  in
  let params =
    match app with
    | "microblog" -> Simulate.microblog ~cal config ~n_messages:messages
    | "dialing" -> Simulate.dialing ~cal config ~n_messages:messages
    | other -> failwith (Printf.sprintf "unknown app %S (microblog|dialing)" other)
  in
  Format.printf "%a@." Calibration.pp cal;
  let obs = if metrics then Atom_obs.Ctx.create () else Atom_obs.Ctx.noop in
  let r = Simulate.run ~obs params in
  Printf.printf
    "latency: %.1f s (%.1f min)\nDES events: %d\nconnections: %d\nbytes on the wire: %.3e\n"
    r.Simulate.latency (r.Simulate.latency /. 60.) r.Simulate.events r.Simulate.connections
    r.Simulate.bytes_sent;
  print_iteration_percentiles r.Simulate.iteration_times;
  if metrics then print_registry obs

let simulate_cmd =
  let app_arg = Arg.(value & opt string "microblog" & info [ "app" ] ~doc:"microblog|dialing.") in
  let servers = Arg.(value & opt int 1024 & info [ "servers" ] ~doc:"Network size.") in
  let messages = Arg.(value & opt int 1_000_000 & info [ "messages" ] ~doc:"Messages per round.") in
  let measured =
    Arg.(value & flag & info [ "measured" ] ~doc:"Calibrate with this host's costs instead of Table 3.")
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Modeled large-scale round over the discrete-event simulator.")
    Term.(const run_simulate $ app_arg $ servers $ messages $ measured $ sim_metrics_flag)

(* ---- distributed ---- *)

(* Fault-plan construction shared by [distributed] and [trace]: kill a
   whole group and/or a random fraction of the fleet at [fail_at]. The
   group membership lookup needs the protocol network, so the builder is
   applied after setup. *)
let build_fault_plan ~(config : Config.t) ~seed ~kill_group ~kill_fraction ~fail_at
    (group_members : int -> int array) : Atom_sim.Faults.plan =
  (match kill_group with
  | Some gid when gid < 0 || gid >= config.Config.n_groups ->
      failwith
        (Printf.sprintf "--kill-group %d: group ids are 0..%d" gid (config.Config.n_groups - 1))
  | Some gid -> Atom_sim.Faults.fail_machines ~at:fail_at (group_members gid)
  | None -> [])
  @
  match kill_fraction with
  | Some fraction ->
      Atom_sim.Faults.fail_fraction
        (Atom_util.Rng.create (seed lxor 0xc4a5))
        ~at:fail_at ~fraction ~n:config.Config.n_servers
  | None -> []

let run_distributed users seed kill_group kill_fraction fail_at loss metrics =
  let ops0 = opcounts_before () in
  let module G = (val Atom_group.Registry.zp_test ()) in
  let module Pr = Protocol.Make (G) in
  let module Dist = Distributed.Make (G) (Pr) in
  let config = Config.tiny ~variant:Config.Trap ~seed () in
  let rng = Atom_util.Rng.create seed in
  let net = Pr.setup rng config () in
  let msgs = List.init users (fun i -> Printf.sprintf "distributed message #%d" i) in
  let subs =
    List.mapi (fun i m -> Pr.submit rng net ~user:i ~entry_gid:(i mod config.Config.n_groups) m) msgs
  in
  let faults =
    build_fault_plan ~config ~seed ~kill_group ~kill_fraction ~fail_at (fun gid ->
        net.Pr.groups.(gid).Pr.members)
  in
  (* Injected churn makes latency the interesting output: charge calibrated
     per-op costs so the number is reproducible across hosts. *)
  let costs = if faults = [] && loss = 0. then Dist.Measured else Dist.Calibrated Calibration.paper in
  let obs = Atom_obs.Ctx.create () in
  let t0 = Unix.gettimeofday () in
  let report = Dist.run ~obs ~faults ~loss_prob:loss ~costs rng net subs in
  Printf.printf
    "real crypto over simulated network: %d messages through %d groups in %.3f virtual s\n(%d DES events, %.0f bytes on the wire, %.2f s wall)\n"
    (List.length report.Dist.outcome.Pr.delivered)
    config.Config.n_groups report.Dist.latency report.Dist.events report.Dist.bytes_sent
    (Unix.gettimeofday () -. t0);
  let f = report.Dist.faults in
  if faults <> [] || loss > 0. then
    Printf.printf
      "churn: %d failures injected, %d recoveries (%.2fs inside recovery), %d timeouts, %d retransmits, %d drops\n"
      f.Dist.failures_injected f.Dist.recoveries f.Dist.recovery_latency f.Dist.timeouts_fired
      f.Dist.retransmits f.Dist.messages_dropped;
  (match report.Dist.abort_error with
  | Some err -> Printf.printf "pipeline error: %s\n" err
  | None -> ());
  List.iter (fun m -> Printf.printf "  %s\n" m) report.Dist.outcome.Pr.delivered;
  if metrics then begin
    print_registry obs;
    print_opcounts ops0
  end

let distributed_cmd =
  let users = Arg.(value & opt int 8 & info [ "users" ] ~doc:"Number of users.") in
  let seed = Arg.(value & opt int 7 & info [ "seed" ] ~doc:"Deterministic seed.") in
  let kill_group =
    Arg.(value & opt (some int) None & info [ "kill-group" ] ~doc:"Fail every member of this group mid-round.")
  in
  let kill_fraction =
    Arg.(value & opt (some float) None & info [ "kill-fraction" ] ~doc:"Fail a random fraction of all servers mid-round.")
  in
  let fail_at =
    Arg.(value & opt float 0.05 & info [ "fail-at" ] ~doc:"Virtual time (s) at which injected failures fire.")
  in
  let loss =
    Arg.(value & opt float 0. & info [ "loss" ] ~doc:"Per-message loss probability on every link.")
  in
  Cmd.v
    (Cmd.info "distributed"
       ~doc:"Run the real protocol asynchronously over the simulated network.")
    Term.(
      const run_distributed $ users $ seed $ kill_group $ kill_fraction $ fail_at $ loss
      $ metrics_flag)

(* ---- trace ---- *)

let run_trace scenario users seed kill_group kill_fraction fail_at loss out metrics =
  let ops0 = opcounts_before () in
  let module G = (val Atom_group.Registry.zp_test ()) in
  let module Pr = Protocol.Make (G) in
  let module Dist = Distributed.Make (G) (Pr) in
  let config =
    match scenario with
    | "microblog" -> Config.tiny ~variant:Config.Trap ~seed ()
    | "dialing" -> { (Config.tiny ~variant:Config.Basic ~seed ()) with Config.msg_bytes = 80 }
    | other -> failwith (Printf.sprintf "unknown scenario %S (microblog|dialing)" other)
  in
  let rng = Atom_util.Rng.create seed in
  let net = Pr.setup rng config () in
  let msgs = List.init users (fun i -> Printf.sprintf "traced message #%d" i) in
  let subs =
    List.mapi (fun i m -> Pr.submit rng net ~user:i ~entry_gid:(i mod config.Config.n_groups) m) msgs
  in
  let faults =
    build_fault_plan ~config ~seed ~kill_group ~kill_fraction ~fail_at (fun gid ->
        net.Pr.groups.(gid).Pr.members)
  in
  (* Always calibrated: the trace is a pure function of (seed, fault plan),
     so two identical invocations serialize byte-identical JSON. *)
  let obs = Atom_obs.Ctx.create ~tracing:true () in
  let report =
    Dist.run ~obs ~faults ~loss_prob:loss ~costs:(Dist.Calibrated Calibration.paper) rng net subs
  in
  let tracer = Atom_obs.Ctx.tracer obs in
  let events = Atom_obs.Trace.events tracer in
  Printf.printf "%s: %d messages, %d groups, %d delivered; %.3f virtual s, %d trace events\n"
    scenario users config.Config.n_groups
    (List.length report.Dist.outcome.Pr.delivered)
    report.Dist.latency
    (Atom_obs.Trace.event_count tracer);
  (match report.Dist.abort_error with
  | Some err -> Printf.printf "pipeline error: %s\n" err
  | None -> ());
  print_string (Atom_obs.Trace.Breakdown.render ~label:"group" ~latency:report.Dist.latency events);
  (match out with
  | Some path ->
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc (Atom_obs.Trace.to_chrome_json tracer));
      Printf.printf "wrote %s (load it at https://ui.perfetto.dev or chrome://tracing)\n" path
  | None -> ());
  if metrics then begin
    print_registry obs;
    print_opcounts ops0
  end

let trace_cmd =
  let scenario =
    Arg.(value & pos 0 string "microblog" & info [] ~docv:"SCENARIO" ~doc:"microblog|dialing.")
  in
  let users = Arg.(value & opt int 8 & info [ "users" ] ~doc:"Number of users.") in
  let seed = Arg.(value & opt int 7 & info [ "seed" ] ~doc:"Deterministic seed.") in
  let kill_group =
    Arg.(value & opt (some int) None & info [ "kill-group" ] ~doc:"Fail every member of this group mid-round.")
  in
  let kill_fraction =
    Arg.(value & opt (some float) None & info [ "kill-fraction" ] ~doc:"Fail a random fraction of all servers mid-round.")
  in
  let fail_at =
    Arg.(value & opt float 0.05 & info [ "fail-at" ] ~doc:"Virtual time (s) at which injected failures fire.")
  in
  let loss =
    Arg.(value & opt float 0. & info [ "loss" ] ~doc:"Per-message loss probability on every link.")
  in
  let out =
    Arg.(value & opt (some string) None & info [ "out" ] ~doc:"Write Chrome trace_event JSON here.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Distributed round with virtual-time tracing: per-phase breakdown on stdout, \
             Perfetto-loadable trace JSON with --out.")
    Term.(
      const run_trace $ scenario $ users $ seed $ kill_group $ kill_fraction $ fail_at $ loss
      $ out $ metrics_flag)

(* ---- cluster ---- *)

let variant_name = function
  | Config.Basic -> "basic"
  | Config.Nizk -> "nizk"
  | Config.Trap -> "trap"

(* Read an integer kB field (VmHWM, VmRSS) out of /proc/<pid>/status;
   0 when unavailable (non-Linux host, already-dead pid). *)
let proc_status_kb (pid : int) (field : string) : int =
  let path = Printf.sprintf "/proc/%d/status" pid in
  match
    In_channel.with_open_text path (fun ic ->
        let rec go () =
          match In_channel.input_line ic with
          | None -> 0
          | Some line ->
              if String.starts_with ~prefix:(field ^ ":") line then
                let digits =
                  String.to_seq line
                  |> Seq.filter (fun c -> c >= '0' && c <= '9')
                  |> String.of_seq
                in
                (try int_of_string digits with Failure _ -> 0)
              else go ()
        in
        go ())
  with
  | v -> v
  | exception Sys_error _ -> 0

(* Load a node's atom-metrics/1 snapshot (the --metrics-out exit dump).
   Strict: a missing file and a malformed document are distinct errors so
   the caller can report which node produced garbage. *)
let load_snapshot (path : string) : (Atom_obs.Snapshot.t, string) result =
  match In_channel.with_open_bin path In_channel.input_all with
  | s -> Atom_obs.Snapshot.of_json s
  | exception Sys_error e -> Error e

(* Group membership without the full (expensive) protocol setup: the same
   beacon-driven formation [Pr.setup] uses, for --kill-group → victim pids. *)
let members_of_group ~(config : Config.t) (gid : int) : int array =
  if gid < 0 || gid >= config.Config.n_groups then
    failwith
      (Printf.sprintf "--kill-group %d: group ids are 0..%d" gid (config.Config.n_groups - 1));
  let beacon = Beacon.create ~seed:config.Config.seed in
  let formation =
    Group_formation.form beacon ~round:0 ~n_servers:config.Config.n_servers
      ~n_groups:config.Config.n_groups ~group_size:config.Config.group_size ()
  in
  formation.Group_formation.groups.(gid).Group_formation.members

(* Reap child node processes and report *unexpected* failures: a child
   that exited non-zero or died to a signal nobody meant to send.
   [deliberate] holds node ids the harness itself killed (chaos kill
   schedules); stragglers force-killed right here are excluded the same
   way. The caller decides what a non-empty report costs — `cluster`
   exits non-zero on one even when everything else (trace collection
   included) succeeded. *)
let reap_children ~(pids : int array) ~(deliberate : (int, unit) Hashtbl.t) ~(kill : bool) :
    (int * string) list =
  let idx_of pid =
    let r = ref (-1) in
    Array.iteri (fun i p -> if p = pid then r := i) pids;
    !r
  in
  let forced = Hashtbl.create 4 in
  let failures = ref [] in
  let note pid st =
    let i = idx_of pid in
    if not (Hashtbl.mem forced pid || Hashtbl.mem deliberate i) then
      match st with
      | Unix.WEXITED 0 -> ()
      | Unix.WEXITED c -> failures := (i, Printf.sprintf "exit status %d" c) :: !failures
      | Unix.WSIGNALED s -> failures := (i, Printf.sprintf "killed by signal %d" s) :: !failures
      | Unix.WSTOPPED _ -> ()
  in
  let force pid =
    Hashtbl.replace forced pid ();
    try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ()
  in
  let deadline = Unix.gettimeofday () +. 5. in
  let remaining = ref (Array.to_list pids) in
  while !remaining <> [] && Unix.gettimeofday () < deadline do
    remaining :=
      List.filter
        (fun pid ->
          match Unix.waitpid [ Unix.WNOHANG ] pid with
          | 0, _ -> true
          | _, st ->
              note pid st;
              false
          | exception Unix.Unix_error _ -> false)
        !remaining;
    if !remaining <> [] && not kill then Unix.sleepf 0.05
    else if !remaining <> [] then List.iter force !remaining
  done;
  List.iter
    (fun pid ->
      force pid;
      match Unix.waitpid [] pid with
      | _, st -> note pid st
      | exception Unix.Unix_error _ -> ())
    !remaining;
  List.sort compare !failures

type fleet_summary = {
  fs_matched : bool;
  fs_abort : string option;
  fs_delivered : string list;
  fs_rejected : int list;
  fs_recovery_rounds : int;
  fs_failed_nodes : int list;
  fs_exit_dups : int;
  fs_wall_s : float;
  fs_peak_child_rss_kb : int;
  fs_node_counters : (string * float) list; (* summed across node dumps *)
  fs_recovery_seconds : float list; (* coordinator: sweep → pipeline resumption *)
  fs_join_times : (int * float) list;
      (* node → coordinator-clock Join receipt: the clock-alignment offset
         for that node's lane in the merged trace *)
  fs_node_snapshots : (int * Atom_obs.Snapshot.t) list; (* live-collected, decoded *)
  fs_snapshot_errors : (int * string) list; (* nodes whose snapshot was missing/bad *)
  fs_child_failures : (int * string) list;
      (* node processes that exited non-zero or died to a signal the
         harness did not send — a failure even when the round matched *)
}

exception Fleet_failure of string

(* Spawn N atom_node processes on loopback, drive a full round over real
   TCP, and check the published plaintexts against the single-process
   reference run for the same seed. [chaos] is forwarded to every node's
   transport wrapper; [kills] schedules SIGKILLs (seconds after the round
   starts, server ids) from a watcher thread that also samples the
   children's peak RSS. One call = one epoch; the soak loops this. *)
let run_fleet_round ~(config : Config.t) ~users ~domains ~node_bin ~timeout ~log_dir ~obs
    ~(chaos : string) ~(kills : (float * int list) option)
    ~(node_metrics_dir : string option) ~(label : string) ?(trace = false) () :
    fleet_summary =
  let module G = (val Atom_group.Registry.zp_test ()) in
  let module Node = Atom_rpc.Node.Make (G) (Atom_rpc.Tcp_transport.Check) in
  let module Tcp = Atom_rpc.Tcp_transport in
  let module Ctrl = Atom_wire.Control in
  Config.validate config;
  if log_dir <> None then Atom_obs.Log.set_level (Some Atom_obs.Log.Info);
  let servers = config.Config.n_servers in
  let seed = config.Config.seed in
  let coord = servers in
  (* A 2s send budget keeps death detection cheap: a probe to a dead peer
     fails within ~1.75s instead of the default 5s ladder. *)
  let t = Tcp.create ~obs ~node_id:coord ~send_timeout:2.0 () in
  let port = Tcp.port t in
  let node_bin =
    match node_bin with
    | Some p -> p
    | None ->
        (* Sibling of this binary; dune names it atom_node.exe, an
           installed copy plain atom_node. *)
        let dir = Filename.dirname Sys.executable_name in
        let exe = Filename.concat dir "atom_node.exe" in
        if Sys.file_exists exe then exe else Filename.concat dir "atom_node"
  in
  let t0 = Unix.gettimeofday () in
  let poll = 0.2 in
  List.iter
    (fun d ->
      match d with
      | Some dir when not (Sys.file_exists dir) -> Unix.mkdir dir 0o755
      | _ -> ())
    [ log_dir; node_metrics_dir ];
  let node_metrics_file i =
    Option.map
      (fun dir -> Filename.concat dir (Printf.sprintf "%s-node-%d.metrics" label i))
      node_metrics_dir
  in
  let pids =
    Array.init servers (fun i ->
        let args =
          [|
            node_bin; "--node-id"; string_of_int i;
            "--coordinator-port"; string_of_int port;
            "--variant"; variant_name config.Config.variant;
            "--servers"; string_of_int servers;
            "--groups"; string_of_int config.Config.n_groups;
            "--group-size"; string_of_int config.Config.group_size;
            "--honest"; string_of_int config.Config.h;
            "--iterations";
            (match config.Config.topology with
            | Config.Square n -> string_of_int n
            | _ -> failwith "cluster runs use the Square topology");
            "--msg-bytes"; string_of_int config.Config.msg_bytes;
            "--seed"; string_of_int seed;
            "--domains"; string_of_int domains;
            "--recv-timeout"; Printf.sprintf "%g" poll;
            "--max-idle"; string_of_int (max 1 (int_of_float (timeout /. poll)));
          |]
        in
        let args = if chaos = "" then args else Array.append args [| "--chaos"; chaos |] in
        let args = if trace then Array.append args [| "--trace" |] else args in
        let args =
          match node_metrics_file i with
          | None -> args
          | Some path -> Array.append args [| "--metrics-out"; path |]
        in
        match log_dir with
        | None -> Unix.create_process node_bin args Unix.stdin Unix.stdout Unix.stderr
        | Some dir ->
            let log =
              Unix.openfile
                (Filename.concat dir (Printf.sprintf "%s-node-%d.log" label i))
                [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
            in
            let pid =
              Unix.create_process node_bin (Array.append args [| "--verbose" |]) Unix.stdin log
                log
            in
            Unix.close log;
            pid)
  in
  let deliberate = Hashtbl.create 4 in
  let reap ~kill = reap_children ~pids ~deliberate ~kill in
  let peak_child = ref 0 in
  let collect_node_counters () =
    let tbl = Hashtbl.create 32 in
    for i = 0 to servers - 1 do
      match node_metrics_file i with
      | None -> ()
      | Some path -> (
          match load_snapshot path with
          | Ok snap ->
              List.iter
                (fun (name, v) ->
                  Hashtbl.replace tbl name
                    (v +. Option.value ~default:0. (Hashtbl.find_opt tbl name)))
                (Atom_obs.Snapshot.counters snap)
          | Error _ -> () (* killed mid-epoch: no exit dump to fold in *))
    done;
    List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
  in
  try
    (* Bring-up: every node joins with its listen port, learns the fleet,
       and acks — only then does protocol traffic start. The peer list is
       re-broadcast until everyone acked (nodes re-ack on every copy), so
       early chaos drops cannot wedge the handshake. *)
    let deadline = Unix.gettimeofday () +. timeout in
    let ports = Hashtbl.create servers in
    (* Clock alignment for the merged trace: a node's trace clock starts at
       the instant before its Join send, so the coordinator-clock receipt
       time of that Join (loopback: sub-ms later) is the offset that maps
       the node's timestamps onto the coordinator's timebase. *)
    let join_times = Hashtbl.create servers in
    while Hashtbl.length ports < servers && Unix.gettimeofday () < deadline do
      match Tcp.recv t ~timeout:0.5 with
      | Ok (_, frame) -> (
          match Ctrl.decode frame with
          | Some (Ctrl.Join { node_id; port }) ->
              if not (Hashtbl.mem join_times node_id) then
                Hashtbl.replace join_times node_id (Unix.gettimeofday () -. t0);
              Hashtbl.replace ports node_id port;
              Tcp.add_peer t ~node_id ~host:"127.0.0.1" ~port
          | _ -> ())
      | Error _ -> ()
    done;
    if Hashtbl.length ports < servers then
      raise
        (Fleet_failure
           (Printf.sprintf "%d/%d nodes joined before timeout" (Hashtbl.length ports) servers));
    let peers = Array.init servers (fun i -> (i, Hashtbl.find ports i)) in
    let send_peers () =
      for i = 0 to servers - 1 do
        ignore (Tcp.send t ~dst:i (Ctrl.encode (Ctrl.Peers { peers })))
      done
    in
    send_peers ();
    let acked = Hashtbl.create servers in
    let last_bcast = ref (Unix.gettimeofday ()) in
    while Hashtbl.length acked < servers && Unix.gettimeofday () < deadline do
      (match Tcp.recv t ~timeout:0.5 with
      | Ok (_, frame) -> (
          match Ctrl.decode frame with
          | Some (Ctrl.Ack { token }) -> Hashtbl.replace acked token ()
          | _ -> ())
      | Error _ -> ());
      if Hashtbl.length acked < servers && Unix.gettimeofday () -. !last_bcast > 2. then begin
        last_bcast := Unix.gettimeofday ();
        send_peers ()
      end
    done;
    if Hashtbl.length acked < servers then
      raise
        (Fleet_failure
           (Printf.sprintf "%d/%d nodes acked the peer list" (Hashtbl.length acked) servers));
    Printf.printf "cluster[%s]: %d node processes on loopback (coordinator port %d) [%.2fs]\n%!"
      label servers port
      (Unix.gettimeofday () -. t0);
    (* Watcher: fires the scheduled kills and tracks the children's peak
       RSS (VmHWM) while the round runs. *)
    let t_round = Unix.gettimeofday () in
    let stop_watch = Atomic.make false in
    let watcher =
      Thread.create
        (fun () ->
          let killed = ref false in
          while not (Atomic.get stop_watch) do
            (match kills with
            | Some (at, victims)
              when (not !killed) && Unix.gettimeofday () -. t_round >= at ->
                killed := true;
                List.iter
                  (fun sid ->
                    Printf.printf "cluster[%s]: killing node %d (pid %d) at %.2fs\n%!" label
                      sid pids.(sid)
                      (Unix.gettimeofday () -. t_round);
                    Hashtbl.replace deliberate sid ();
                    try Unix.kill pids.(sid) Sys.sigkill with Unix.Unix_error _ -> ())
                  victims
            | _ -> ());
            Array.iter
              (fun pid -> peak_child := max !peak_child (proc_status_kb pid "VmHWM"))
              pids;
            Thread.delay 0.05
          done)
        ()
    in
    (* --domains 0 (the default): honor ATOM_DOMAINS when set, otherwise
       use the measured recommendation (host cores capped by the
       recommended_domains a bench parallel run recorded on matching
       hardware). Only pools this process created are shut down here. *)
    let pool, own_pool =
      if domains > 1 then (Some (Atom_exec.Pool.create ~domains ()), true)
      else if domains = 1 then (None, false)
      else begin
        match Sys.getenv_opt "ATOM_DOMAINS" with
        | Some _ -> (Atom_exec.Pool.default (), false)
        | None ->
            let d = Atom_exec.Pool.auto_domains () in
            Printf.printf "cluster: coordinator using %d worker domain%s (measured default)\n%!"
              d
              (if d = 1 then "" else "s");
            if d > 1 then (Some (Atom_exec.Pool.create ~domains:d ()), true) else (None, false)
      end
    in
    let result =
      Node.run_coordinator ~obs
        ~clock:(fun () -> Unix.gettimeofday () -. t0)
        ~collect_stats:trace ?pool t ~config ~users ~recv_timeout:0.25
        ~max_idle:(max 1 (int_of_float (timeout /. 0.25)))
        ()
    in
    if own_pool then Option.iter Atom_exec.Pool.shutdown pool;
    Atomic.set stop_watch true;
    Thread.join watcher;
    let child_failures = reap ~kill:false in
    Tcp.close t;
    (* Strict decode of the live-collected snapshots; when stats were
       requested, a live node that never answered is an error too — the
       schema gate in CI must see every lane. *)
    let node_snapshots, snapshot_errors =
      List.fold_left
        (fun (oks, errs) (sid, json) ->
          match Atom_obs.Snapshot.of_json json with
          | Ok s -> ((sid, s) :: oks, errs)
          | Error e -> (oks, (sid, e) :: errs))
        ([], []) result.Node.node_snapshots
    in
    let snapshot_errors =
      if not trace then snapshot_errors
      else
        List.fold_left
          (fun errs sid ->
            if
              List.mem sid result.Node.failed_nodes
              || List.mem_assoc sid result.Node.node_snapshots
            then errs
            else (sid, "no Stats_reply received") :: errs)
          snapshot_errors
          (List.init servers Fun.id)
    in
    {
      fs_matched = result.Node.matched;
      fs_abort = result.Node.cluster_abort;
      fs_delivered = result.Node.delivered;
      fs_rejected = result.Node.rejected_submissions;
      fs_recovery_rounds = result.Node.recovery_rounds;
      fs_failed_nodes = result.Node.failed_nodes;
      fs_exit_dups =
        int_of_float (Atom_obs.Metrics.counter_value (Atom_obs.Ctx.metrics obs) "coord.exit_dups");
      fs_wall_s = Unix.gettimeofday () -. t0;
      fs_peak_child_rss_kb = !peak_child;
      fs_node_counters = collect_node_counters ();
      fs_recovery_seconds = result.Node.recovery_seconds;
      fs_join_times =
        List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) join_times []);
      fs_node_snapshots = List.sort compare node_snapshots;
      fs_snapshot_errors = List.sort compare snapshot_errors;
      fs_child_failures = child_failures;
    }
  with Fleet_failure msg ->
    let child_failures = reap ~kill:true in
    Tcp.close t;
    {
      fs_matched = false;
      fs_abort = Some msg;
      fs_delivered = [];
      fs_rejected = [];
      fs_recovery_rounds = 0;
      fs_failed_nodes = [];
      fs_exit_dups = 0;
      fs_wall_s = Unix.gettimeofday () -. t0;
      fs_peak_child_rss_kb = !peak_child;
      fs_node_counters = collect_node_counters ();
      fs_recovery_seconds = [];
      fs_join_times = [];
      fs_node_snapshots = [];
      fs_snapshot_errors = [];
      fs_child_failures = child_failures;
    }

let cluster_config ~variant ~servers ~groups ~group_size ~h ~iterations ~msg_bytes ~seed =
  {
    Config.variant;
    n_servers = servers;
    n_groups = groups;
    group_size;
    h;
    f = 0.2;
    topology = Config.Square iterations;
    msg_bytes;
    seed;
    mailboxes = 64;
    dummy_mu = 2.;
    dummy_b = 1.;
  }

(* Per-phase wall-time percentiles across the node lanes (from each
   snapshot's tid-0 phase spans — the event-loop tracker, which tiles the
   node's round by construction) with slowest-node attribution: the
   cluster-wide "where did the round go" table. *)
let phase_summary_table (snaps : (int * Atom_obs.Snapshot.t) list) : string =
  let module Tr = Atom_obs.Trace in
  let per_node =
    List.map
      (fun (sid, s) ->
        let tracks = Tr.Breakdown.tracks s.Atom_obs.Snapshot.events in
        let phases =
          match List.find_opt (fun trk -> trk.Tr.Breakdown.tid = 0) tracks with
          | Some trk -> trk.Tr.Breakdown.phases
          | None -> []
        in
        (sid, phases))
      snaps
  in
  let names =
    List.fold_left
      (fun acc (_, phases) ->
        List.fold_left
          (fun acc (nm, _) -> if List.mem nm acc then acc else acc @ [ nm ])
          acc phases)
      [] per_node
  in
  let b = Buffer.create 512 in
  Buffer.add_string b "cluster phase breakdown across nodes (event-loop wall time):\n";
  Buffer.add_string b
    (Printf.sprintf "  %-10s %9s %9s %9s %9s  %s\n" "phase" "p50(s)" "p90(s)" "p99(s)"
       "max(s)" "slowest");
  List.iter
    (fun nm ->
      let of_node (_, ph) = Option.value ~default:0. (List.assoc_opt nm ph) in
      let arr = Array.of_list (List.map of_node per_node) in
      let p q = Atom_util.Stats.percentile arr q in
      let slowest, _ =
        List.fold_left
          (fun (bs, bv) node -> if of_node node > bv then (fst node, of_node node) else (bs, bv))
          (-1, neg_infinity) per_node
      in
      Buffer.add_string b
        (Printf.sprintf "  %-10s %9.3f %9.3f %9.3f %9.3f  node %d\n" nm (p 50.) (p 90.)
           (p 99.) (p 100.) slowest))
    names;
  Buffer.contents b

let run_cluster variant users servers groups group_size h iterations msg_bytes seed domains
    node_bin timeout kill_group fail_at loss chaos metrics metrics_out trace_out log_dir =
  let ops0 = opcounts_before () in
  let config =
    cluster_config ~variant ~servers ~groups ~group_size ~h ~iterations ~msg_bytes ~seed
  in
  (* --trace-out needs a live tracer on the coordinator too — its lane
     anchors the merged timebase. *)
  let obs =
    if metrics || metrics_out <> None || trace_out <> None then
      Atom_obs.Ctx.create ~tracing:(trace_out <> None) ()
    else Atom_obs.Ctx.noop
  in
  let kills =
    match kill_group with
    | Some gid -> Some (fail_at, Array.to_list (members_of_group ~config gid))
    | None -> None
  in
  (* --loss synthesizes a drop-only chaos spec (appended, so it wins over a
     drop= field in --chaos); the [after] guard keeps the handshake clean. *)
  let chaos =
    if loss > 0. then Printf.sprintf "%s;after=0.5;drop=%g;seed=%d" chaos loss seed else chaos
  in
  let r =
    run_fleet_round ~config ~users ~domains ~node_bin ~timeout ~log_dir ~obs ~chaos ~kills
      ~node_metrics_dir:None ~label:"round" ~trace:(trace_out <> None) ()
  in
  Printf.printf "cluster round: %d/%d messages delivered over TCP in %.2fs wall\n"
    (List.length r.fs_delivered) users r.fs_wall_s;
  (match r.fs_abort with
  | Some d -> Printf.printf "cluster ABORTED: %s\n" d
  | None -> ());
  if r.fs_rejected <> [] then
    Printf.printf "rejected submissions: %s\n"
      (String.concat ", " (List.map string_of_int r.fs_rejected));
  if r.fs_failed_nodes <> [] then
    Printf.printf "failed nodes: %s (%d recovery sweeps)\n"
      (String.concat ", " (List.map string_of_int r.fs_failed_nodes))
      r.fs_recovery_rounds;
  if r.fs_recovery_seconds <> [] then
    Printf.printf "recovery repair times: %s s (sweep start to pipeline resumption)\n"
      (String.concat ", " (List.map (Printf.sprintf "%.2f") r.fs_recovery_seconds));
  List.iter (fun m -> Printf.printf "  %s\n" m) r.fs_delivered;
  List.iter
    (fun (sid, why) -> Printf.printf "cluster: node %d process failed: %s\n" sid why)
    r.fs_child_failures;
  print_endline
    (if r.fs_matched then "MATCH: cluster output equals the single-process reference"
     else "MISMATCH: cluster output differs from the single-process reference");
  (match metrics_out with
  | Some path ->
      let snap = Atom_obs.Snapshot.of_ctx ~node_id:servers obs in
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc (Atom_obs.Snapshot.to_json snap));
      Printf.printf "wrote %s\n" path
  | None -> ());
  let snapshots_ok = r.fs_snapshot_errors = [] in
  (match trace_out with
  | None -> ()
  | Some path ->
      List.iter
        (fun (sid, e) -> Printf.printf "cluster: node %d snapshot invalid: %s\n" sid e)
        r.fs_snapshot_errors;
      if not snapshots_ok then
        Printf.printf "cluster: merged trace %s will be missing lanes\n" path;
      (* One merged Chrome trace: a pid lane per node plus the coordinator,
         node timestamps shifted onto the coordinator's clock by each
         node's Join-receipt offset. *)
      let coord_lane =
        {
          Atom_obs.Trace.lane_pid = servers + 1;
          lane_name = "coordinator";
          lane_offset = 0.;
          lane_events = Atom_obs.Trace.events (Atom_obs.Ctx.tracer obs);
        }
      in
      let node_lanes =
        List.map
          (fun (sid, snap) ->
            {
              Atom_obs.Trace.lane_pid = sid + 1;
              lane_name = Printf.sprintf "node %d" sid;
              lane_offset = Option.value ~default:0. (List.assoc_opt sid r.fs_join_times);
              lane_events = snap.Atom_obs.Snapshot.events;
            })
          r.fs_node_snapshots
      in
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc
            (Atom_obs.Trace.to_chrome_json_lanes (node_lanes @ [ coord_lane ])));
      Printf.printf "wrote %s (%d lanes; load it at https://ui.perfetto.dev)\n" path
        (List.length node_lanes + 1);
      print_string (phase_summary_table r.fs_node_snapshots));
  if metrics then begin
    print_registry obs;
    print_opcounts ops0
  end;
  (* A child that crashed is a failed run even when the plaintext check and
     the trace collection both succeeded — its exit status must propagate. *)
  if (not r.fs_matched) || (not snapshots_ok) || r.fs_child_failures <> [] then exit 1

(* Flag set shared by `cluster` and `cluster soak`. *)
let cluster_users = Arg.(value & opt int 16 & info [ "users" ] ~doc:"Number of users.")

let cluster_servers =
  Arg.(value & opt int 8 & info [ "servers" ] ~doc:"Node processes to spawn.")

let cluster_groups = Arg.(value & opt int 4 & info [ "groups" ] ~doc:"Number of groups.")

let cluster_group_size =
  Arg.(value & opt int 2 & info [ "group-size" ] ~doc:"Servers per group (k).")

let cluster_h =
  Arg.(value & opt int 1 & info [ "honest" ] ~doc:"Required honest servers per group (h).")

let cluster_iterations =
  Arg.(value & opt int 3 & info [ "iterations" ] ~doc:"Mixing iterations (T).")

let cluster_msg_bytes = Arg.(value & opt int 32 & info [ "msg-bytes" ] ~doc:"Plaintext size.")
let cluster_seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Deterministic seed.")

let cluster_domains =
  Arg.(
    value & opt int 0
    & info [ "domains" ]
        ~doc:
          "Worker domains per node for crypto batches (0 = honor ATOM_DOMAINS when set, \
           otherwise the measured default: host cores capped by the benched \
           recommended_domains).")

let cluster_node_bin =
  Arg.(value & opt (some string) None & info [ "node-bin" ] ~doc:"Path to the atom_node binary.")

let cluster_log_dir =
  Arg.(value & opt (some string) None & info [ "log-dir" ] ~doc:"Per-node verbose logs go here.")

let cluster_kill_group =
  Arg.(
    value & opt (some int) None
    & info [ "kill-group" ]
        ~doc:"SIGKILL every member process of this group mid-round (mirrors `distributed`).")

let cluster_fail_at =
  Arg.(
    value & opt float 1.0
    & info [ "fail-at" ] ~doc:"Seconds after round start at which --kill-group fires.")

let cluster_loss =
  Arg.(
    value & opt float 0.
    & info [ "loss" ]
        ~doc:"Per-message drop probability on every node's transport (mirrors `distributed`).")

let cluster_chaos =
  Arg.(
    value & opt string ""
    & info [ "chaos" ]
        ~doc:
          "Raw chaos spec forwarded to every node, e.g. \
           'drop=0.02;corrupt=0.01;partition=1:3:0,1|2,3'.")

let cluster_term =
  let timeout =
    Arg.(value & opt float 120. & info [ "timeout" ] ~doc:"Per-phase timeout budget (s).")
  in
  let metrics_out =
    Arg.(
      value & opt (some string) None
      & info [ "metrics-out" ]
          ~doc:"Write the coordinator's atom-metrics/1 JSON snapshot here.")
  in
  let trace_out =
    Arg.(
      value & opt (some string) None
      & info [ "trace-out" ]
          ~doc:
            "Trace every node's round on its wall clock, collect the buffers over the \
             control plane, and write one merged Chrome trace (a lane per node, \
             coordinator timebase) here. Non-zero exit if any node's snapshot is \
             missing or malformed.")
  in
  let variant =
    Arg.(value & opt variant_conv Config.Nizk & info [ "variant" ] ~doc:"basic|nizk|trap.")
  in
  Term.(
    const run_cluster $ variant $ cluster_users $ cluster_servers $ cluster_groups
    $ cluster_group_size $ cluster_h $ cluster_iterations $ cluster_msg_bytes $ cluster_seed
    $ cluster_domains $ cluster_node_bin $ timeout $ cluster_kill_group $ cluster_fail_at
    $ cluster_loss $ cluster_chaos $ metrics_flag $ metrics_out $ trace_out
    $ cluster_log_dir)

(* ---- cluster soak ---- *)

(* One epoch's fault plan. The rotation covers the ISSUE's error budget:
   process kills, an N-way partition, and corrupted/dropped/duplicated/
   delayed frames, with clean epochs interspersed as a control. *)
type epoch_plan = { ep_kills : (float * int list) option; ep_chaos : string; ep_descr : string }

let plan_epoch ~smoke ~servers ~fail_at ~loss ~corrupt ~(chaos_seed : int) (e : int) :
    epoch_plan =
  let ids lo hi = String.concat "," (List.map string_of_int (List.init (hi - lo) (fun i -> lo + i))) in
  let half = max 1 (servers / 2) in
  (* A healthy loopback round finishes in well under a second, so kill and
     partition epochs stretch it with per-message delays; otherwise the
     round would be over before the scheduled fault lands. *)
  let stretch = "after=0.05;delay=0.6;delay_s=0.2" in
  let partition_spec =
    Printf.sprintf "%s;partition=0.4:1.6:%s|%s;seed=%d" stretch (ids 0 half) (ids half servers)
      chaos_seed
  in
  let corrupt_spec =
    Printf.sprintf "%s;drop=%g;corrupt=%g;dup=0.03;seed=%d" stretch loss corrupt chaos_seed
  in
  let kill =
    (* Index by kill-epoch ordinal, not epoch number: the kill cadence
       (every 3rd/4th epoch) must not alias with the server count. *)
    let victim = e / (if smoke then 3 else 4) mod servers in
    {
      ep_kills = Some (fail_at, [ victim ]);
      ep_chaos = Printf.sprintf "%s;seed=%d" stretch chaos_seed;
      ep_descr = Printf.sprintf "kill node %d at %gs" victim fail_at;
    }
  in
  let partition =
    { ep_kills = None; ep_chaos = partition_spec; ep_descr = "partition halves 0.4-1.6s" }
  in
  let corrupt_ep =
    { ep_kills = None; ep_chaos = corrupt_spec; ep_descr = "corrupt+loss+dup+delay" }
  in
  let clean = { ep_kills = None; ep_chaos = ""; ep_descr = "clean" } in
  if smoke then
    (* Short CI schedule: one kill, one partition with corrupt frames, one
       clean epoch to confirm the fleet machinery is still sound. *)
    match e mod 3 with
    | 0 -> kill
    | 1 ->
        {
          ep_kills = None;
          ep_chaos = partition_spec ^ ";" ^ corrupt_spec;
          ep_descr = "partition + corrupt frames";
        }
    | _ -> clean
  else match e mod 4 with 0 -> clean | 1 -> kill | 2 -> partition | _ -> corrupt_ep

let json_escape (s : string) : string =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let chaos_fault_counters =
  [
    "chaos.drops"; "chaos.delays"; "chaos.dups"; "chaos.corruptions"; "chaos.partition_drops";
    "chaos.resets";
  ]

(* Long-haul soak: epochs of fresh fleets under a rotating fault schedule,
   each epoch's published plaintexts checked against the single-process
   reference. Telemetry (faults injected, recoveries completed, epochs
   survived, peak RSS) lands in a JSON file; any mismatch exits non-zero.
   This is the error budget for the real runtime (§4.5's claim under real
   processes and real TCP). *)
let run_soak variant users servers groups group_size h iterations msg_bytes seed domains
    node_bin timeout epochs fail_at loss corrupt smoke telemetry_out log_dir =
  let epochs = if smoke then 3 else epochs in
  let metrics_dir = Filename.concat (Filename.get_temp_dir_name ()) (Printf.sprintf "atom-soak-%d" (Unix.getpid ())) in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n  \"epochs\": [\n";
  let mismatches = ref 0 in
  let total_kills = ref 0 in
  let total_recoveries = ref 0 in
  let total_recovery_sweeps = ref 0 in
  let total_faults = ref 0. in
  let peak_rss = ref 0 in
  let coord_rss = Array.make (max 1 epochs) 0 in
  let survived = ref 0 in
  (* Error-budget accounting: a fault counts as recovered iff its epoch
     finished with the published plaintexts matching the reference — the
     round absorbed it. Repair times (sweep → pipeline resumption) pool
     across epochs into one histogram. *)
  let faults_recovered = ref 0. in
  let all_recovery_s = ref [] in
  let self = Unix.getpid () in
  (try
     for e = 0 to epochs - 1 do
       let epoch_seed = seed + e in
       let plan =
         plan_epoch ~smoke ~servers ~fail_at ~loss ~corrupt ~chaos_seed:(seed + (1000 * (e + 1))) e
       in
       let config =
         cluster_config ~variant ~servers ~groups ~group_size ~h ~iterations ~msg_bytes
           ~seed:epoch_seed
       in
       Printf.printf "soak epoch %d/%d (seed %d): %s\n%!" (e + 1) epochs epoch_seed plan.ep_descr;
       let obs = Atom_obs.Ctx.create () in
       let r =
         run_fleet_round ~config ~users ~domains ~node_bin ~timeout ~log_dir ~obs
           ~chaos:plan.ep_chaos ~kills:plan.ep_kills ~node_metrics_dir:(Some metrics_dir)
           ~label:(Printf.sprintf "epoch%d" e) ()
       in
       let counter name = Option.value ~default:0. (List.assoc_opt name r.fs_node_counters) in
       let faults_this_epoch =
         List.fold_left (fun acc name -> acc +. counter name) 0. chaos_fault_counters
         +. float_of_int (match plan.ep_kills with Some (_, v) -> List.length v | None -> 0)
       in
       total_faults := !total_faults +. faults_this_epoch;
       if r.fs_matched then faults_recovered := !faults_recovered +. faults_this_epoch;
       all_recovery_s := !all_recovery_s @ r.fs_recovery_seconds;
       total_kills :=
         !total_kills + (match plan.ep_kills with Some (_, v) -> List.length v | None -> 0);
       total_recoveries := !total_recoveries + int_of_float (counter "node.recoveries");
       total_recovery_sweeps := !total_recovery_sweeps + r.fs_recovery_rounds;
       coord_rss.(e) <- proc_status_kb self "VmRSS";
       peak_rss := max !peak_rss (max coord_rss.(e) r.fs_peak_child_rss_kb);
       if r.fs_matched then incr survived else incr mismatches;
       Printf.printf
         "soak epoch %d/%d: %s (%.2fs wall, %d faults injected, %d sweeps, %d share \
          recoveries, %d failed nodes, child peak RSS %d kB)\n%!"
         (e + 1) epochs
         (if r.fs_matched then "MATCH" else "MISMATCH")
         r.fs_wall_s
         (int_of_float faults_this_epoch)
         r.fs_recovery_rounds
         (int_of_float (counter "node.recoveries"))
         (List.length r.fs_failed_nodes) r.fs_peak_child_rss_kb;
       if e > 0 then Buffer.add_string buf ",\n";
       Buffer.add_string buf
         (Printf.sprintf
            "    {\"epoch\": %d, \"seed\": %d, \"plan\": \"%s\", \"matched\": %b, \
             \"abort\": %s, \"wall_s\": %.3f, \"delivered\": %d, \"faults_injected\": %d, \
             \"recovery_sweeps\": %d, \"share_recoveries\": %d, \"failed_nodes\": [%s], \
             \"bad_frames\": %d, \"dups_dropped\": %d, \"resends\": %d, \"exit_dups\": %d, \
             \"recovery_seconds\": [%s], \"coord_rss_kb\": %d, \"peak_child_rss_kb\": %d}"
            e epoch_seed (json_escape plan.ep_descr) r.fs_matched
            (match r.fs_abort with
            | Some a -> Printf.sprintf "\"%s\"" (json_escape a)
            | None -> "null")
            r.fs_wall_s
            (List.length r.fs_delivered)
            (int_of_float faults_this_epoch)
            r.fs_recovery_rounds
            (int_of_float (counter "node.recoveries"))
            (String.concat ", " (List.map string_of_int r.fs_failed_nodes))
            (int_of_float (counter "node.bad_frames"))
            (int_of_float (counter "node.dups_dropped"))
            (int_of_float (counter "node.resends"))
            r.fs_exit_dups
            (String.concat ", " (List.map (Printf.sprintf "%.3f") r.fs_recovery_seconds))
            coord_rss.(e) r.fs_peak_child_rss_kb);
       if not r.fs_matched then begin
         Printf.printf "soak: plaintext mismatch in epoch %d — stopping\n%!" e;
         raise Exit
       end
     done
   with Exit -> ());
  Buffer.add_string buf "\n  ],\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"summary\": {\"epochs_scheduled\": %d, \"epochs_survived\": %d, \"mismatches\": \
        %d, \"kills\": %d, \"faults_injected\": %d, \"recovery_sweeps\": %d, \
        \"share_recoveries\": %d, \"peak_rss_kb\": %d, \"coord_rss_first_kb\": %d, \
        \"coord_rss_last_kb\": %d},\n"
       epochs !survived !mismatches !total_kills
       (int_of_float !total_faults)
       !total_recovery_sweeps !total_recoveries !peak_rss
       (if epochs > 0 then coord_rss.(0) else 0)
       (if epochs > 0 then coord_rss.(max 0 (!survived + !mismatches - 1)) else 0));
  (* The error budget: every injected fault must land in an epoch whose
     output matched the reference ("recovered"), and no epoch may
     mismatch. CI asserts faults_injected == faults_recovered and
     verdict == "met" on this block. *)
  let rec_arr = Array.of_list !all_recovery_s in
  let rp q = if Array.length rec_arr = 0 then 0. else Atom_util.Stats.percentile rec_arr q in
  let faults_injected = int_of_float !total_faults in
  let recovered = int_of_float !faults_recovered in
  let unrecovered = faults_injected - recovered in
  let verdict = if unrecovered = 0 && !mismatches = 0 then "met" else "missed" in
  Buffer.add_string buf
    (Printf.sprintf
       "  \"error_budget\": {\"faults_injected\": %d, \"faults_recovered\": %d, \
        \"faults_unrecovered\": %d, \"mismatches\": %d, \"recovery_time_s\": {\"count\": \
        %d, \"p50\": %.3f, \"p90\": %.3f, \"p99\": %.3f, \"max\": %.3f}, \"verdict\": \
        \"%s\"}\n"
       faults_injected recovered unrecovered !mismatches (Array.length rec_arr) (rp 50.)
       (rp 90.) (rp 99.) (rp 100.) verdict);
  Buffer.add_string buf "}\n";
  Out_channel.with_open_bin telemetry_out (fun oc -> Out_channel.output_string oc (Buffer.contents buf));
  Printf.printf
    "soak: %d/%d epochs survived, %d mismatches, %d faults injected (%d recovered), %d \
     recovery sweeps, %d share recoveries, peak RSS %d kB\n\
     error budget %s; wrote %s\n"
    !survived epochs !mismatches faults_injected recovered !total_recovery_sweeps
    !total_recoveries !peak_rss verdict telemetry_out;
  if !mismatches > 0 then exit 1

let soak_cmd =
  let variant =
    Arg.(value & opt variant_conv Config.Basic & info [ "variant" ] ~doc:"basic|nizk|trap.")
  in
  let timeout =
    Arg.(value & opt float 60. & info [ "timeout" ] ~doc:"Per-epoch timeout budget (s).")
  in
  let epochs = Arg.(value & opt int 20 & info [ "epochs" ] ~doc:"Epochs (rounds) to run.") in
  let fail_at =
    Arg.(
      value & opt float 0.75
      & info [ "fail-at" ] ~doc:"Seconds into a kill epoch's round at which the kill fires.")
  in
  let loss =
    Arg.(value & opt float 0.01 & info [ "loss" ] ~doc:"Drop probability in corrupt epochs.")
  in
  let corrupt =
    Arg.(
      value & opt float 0.05
      & info [ "corrupt" ] ~doc:"Byzantine frame-mutation probability in corrupt epochs.")
  in
  let smoke =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:"CI preset: 3 epochs — one kill, one partition with corrupt frames, one clean.")
  in
  let telemetry_out =
    Arg.(
      value & opt string "soak-telemetry.json"
      & info [ "telemetry-out" ] ~doc:"Write the recovery-telemetry JSON here.")
  in
  Cmd.v
    (Cmd.info "soak"
       ~doc:
         "Long-haul chaos soak: epochs of fresh fleets under kills, partitions and corrupt \
          frames; every epoch's plaintexts are checked against the reference (non-zero exit \
          on any mismatch) and recovery telemetry is dumped as JSON.")
    Term.(
      const run_soak $ variant $ cluster_users $ cluster_servers $ cluster_groups
      $ cluster_group_size $ cluster_h $ cluster_iterations $ cluster_msg_bytes $ cluster_seed
      $ cluster_domains $ cluster_node_bin $ timeout $ epochs $ fail_at $ loss $ corrupt
      $ smoke $ telemetry_out $ cluster_log_dir)

let cluster_cmd =
  Cmd.group ~default:cluster_term
    (Cmd.info "cluster"
       ~doc:
         "Spawn N atom_node processes on loopback, run a round over real TCP, and check the \
          output against the single-process reference (default), or run the chaos soak \
          (`cluster soak`).")
    [ soak_cmd ]

(* ---- clients: submission-plane load generator ---- *)

(* Per-client tallies, written only by that client's thread (joined before
   the cross-check reads them). *)
type client_stats = {
  mutable cs_accepted : (string * int) list; (* honest plaintext, acked epoch *)
  mutable cs_rejected_msgs : string list; (* well-formed but misrouted: must never publish *)
  mutable cs_rejected : int;
  mutable cs_backpressure : int;
  mutable cs_retries : int;
  mutable cs_lost : int; (* honest submission never acked within the budget *)
  mutable cs_anomalies : int; (* misbehaving submission the plane accepted *)
  mutable cs_announces : int;
  mutable cs_bad_sigs : int;
}

(* Spawn an ingest-mode fleet, run N concurrent simulated clients against
   the entry heads over real TCP, and drive pipelined epochs with
   [run_ingest_coordinator]. The exit gate is the submission plane's
   contract: every accepted submission appears on the signed bulletin of
   exactly its acked epoch, nothing rejected or unacked ever appears, and
   every epoch's seal verifies under the publisher key — including under
   chaos drops and a mid-run kill of a non-entry-head node. *)
let run_clients variant n_clients per_client arrival misbehave servers groups group_size h
    iterations msg_bytes seed domains node_bin timeout epoch_s min_epochs pow_bits
    ingest_rate ingest_burst queue_cap loss kill_at json_out log_dir =
  let module G = (val Atom_group.Registry.zp_test ()) in
  let module Pr = Protocol.Make (G) in
  let module Node = Atom_rpc.Node.Make (G) (Atom_rpc.Tcp_transport.Check) in
  let module Tcp = Atom_rpc.Tcp_transport in
  let module Ctrl = Atom_wire.Control in
  let module Adm = Atom_ingest.Admission in
  if variant = Config.Trap then
    failwith "clients: the trap endgame has no submission plane (basic|nizk)";
  let config =
    cluster_config ~variant ~servers ~groups ~group_size ~h ~iterations ~msg_bytes ~seed
  in
  Config.validate config;
  if log_dir <> None then Atom_obs.Log.set_level (Some Atom_obs.Log.Info);
  let obs = Atom_obs.Ctx.create () in
  let coord = servers in
  let t = Tcp.create ~obs ~node_id:coord ~send_timeout:2.0 () in
  let port = Tcp.port t in
  let node_bin =
    match node_bin with
    | Some p -> p
    | None ->
        let dir = Filename.dirname Sys.executable_name in
        let exe = Filename.concat dir "atom_node.exe" in
        if Sys.file_exists exe then exe else Filename.concat dir "atom_node"
  in
  let t0 = Unix.gettimeofday () in
  let poll = 0.2 in
  (match log_dir with
  | Some dir when not (Sys.file_exists dir) -> Unix.mkdir dir 0o755
  | _ -> ());
  (* The [after] guard keeps the bring-up handshake clean; everything past
     it — Submits, acks, step frames, announcements — rides the lossy
     transport and must still satisfy the exactly-once gate. *)
  let chaos = if loss > 0. then Printf.sprintf "after=1.0;drop=%g;seed=%d" loss seed else "" in
  let pids =
    Array.init servers (fun i ->
        let args =
          [|
            node_bin; "--node-id"; string_of_int i;
            "--coordinator-port"; string_of_int port;
            "--variant"; variant_name config.Config.variant;
            "--servers"; string_of_int servers;
            "--groups"; string_of_int groups;
            "--group-size"; string_of_int group_size;
            "--honest"; string_of_int h;
            "--iterations"; string_of_int iterations;
            "--msg-bytes"; string_of_int msg_bytes;
            "--seed"; string_of_int seed;
            "--domains"; string_of_int domains;
            "--recv-timeout"; Printf.sprintf "%g" poll;
            "--max-idle"; string_of_int (max 1 (int_of_float (timeout /. poll)));
            "--ingest";
            "--ingest-rate"; Printf.sprintf "%g" ingest_rate;
            "--ingest-burst"; Printf.sprintf "%g" ingest_burst;
            "--ingest-pow-bits"; string_of_int pow_bits;
            "--ingest-queue-cap"; string_of_int queue_cap;
          |]
        in
        let args = if chaos = "" then args else Array.append args [| "--chaos"; chaos |] in
        match log_dir with
        | None -> Unix.create_process node_bin args Unix.stdin Unix.stdout Unix.stderr
        | Some dir ->
            let log =
              Unix.openfile
                (Filename.concat dir (Printf.sprintf "clients-node-%d.log" i))
                [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
            in
            let pid =
              Unix.create_process node_bin (Array.append args [| "--verbose" |]) Unix.stdin log
                log
            in
            Unix.close log;
            pid)
  in
  let deliberate = Hashtbl.create 4 in
  let reap ~kill = reap_children ~pids ~deliberate ~kill in
  let ports = Hashtbl.create servers in
  (try
     let deadline = Unix.gettimeofday () +. timeout in
     while Hashtbl.length ports < servers && Unix.gettimeofday () < deadline do
       match Tcp.recv t ~timeout:0.5 with
       | Ok (_, frame) -> (
           match Ctrl.decode frame with
           | Some (Ctrl.Join { node_id; port }) ->
               Hashtbl.replace ports node_id port;
               Tcp.add_peer t ~node_id ~host:"127.0.0.1" ~port
           | _ -> ())
       | Error _ -> ()
     done;
     if Hashtbl.length ports < servers then
       raise
         (Fleet_failure
            (Printf.sprintf "%d/%d nodes joined before timeout" (Hashtbl.length ports) servers));
     let peers = Array.init servers (fun i -> (i, Hashtbl.find ports i)) in
     let send_peers () =
       for i = 0 to servers - 1 do
         ignore (Tcp.send t ~dst:i (Ctrl.encode (Ctrl.Peers { peers })))
       done
     in
     send_peers ();
     let acked = Hashtbl.create servers in
     let last_bcast = ref (Unix.gettimeofday ()) in
     while Hashtbl.length acked < servers && Unix.gettimeofday () < deadline do
       (match Tcp.recv t ~timeout:0.5 with
       | Ok (_, frame) -> (
           match Ctrl.decode frame with
           | Some (Ctrl.Ack { token }) -> Hashtbl.replace acked token ()
           | _ -> ())
       | Error _ -> ());
       if Hashtbl.length acked < servers && Unix.gettimeofday () -. !last_bcast > 2. then begin
         last_bcast := Unix.gettimeofday ();
         send_peers ()
       end
     done;
     if Hashtbl.length acked < servers then
       raise
         (Fleet_failure
            (Printf.sprintf "%d/%d nodes acked the peer list" (Hashtbl.length acked) servers))
   with Fleet_failure msg ->
     ignore (reap ~kill:true);
     Tcp.close t;
     Printf.printf "clients: fleet bring-up failed: %s\n" msg;
     exit 1);
  Printf.printf "clients: %d ingest nodes up (coordinator port %d) [%.2fs]\n%!" servers port
    (Unix.gettimeofday () -. t0);
  (* The same deterministic setup every node derived from --seed: the
     client threads need it to build onions, the harness to know who the
     entry heads are. Read-only from here on, so sharing across threads is
     safe. *)
  let net = Pr.setup (Atom_util.Rng.create seed) config () in
  let heads = Array.init groups (fun gid -> net.Pr.groups.(gid).Pr.members.(0)) in
  let is_head sid = Array.exists (fun hd -> hd = sid) heads in
  let _, bulletin_pk = Node.bulletin_keypair config in
  (* Chaos kill: a non-entry-head only. A dead entry head loses the units
     only it had admitted — the documented loss bound — so the zero-loss
     gate pins the kill to a mixing-only node (§4.5 recovers its roles). *)
  let victim =
    if kill_at <= 0. then None
    else
      match List.find_opt (fun sid -> not (is_head sid)) (List.init servers Fun.id) with
      | None ->
          Printf.printf "clients: every server heads an entry group; skipping --kill-at\n";
          None
      | v -> v
  in
  let stop_watch = Atomic.make false in
  let watcher =
    Thread.create
      (fun () ->
        let killed = ref false in
        while not (Atomic.get stop_watch) do
          (match victim with
          | Some sid when (not !killed) && Unix.gettimeofday () -. t0 >= kill_at ->
              killed := true;
              Hashtbl.replace deliberate sid ();
              Printf.printf "clients: killing node %d (pid %d) at %.2fs\n%!" sid pids.(sid)
                (Unix.gettimeofday () -. t0);
              (try Unix.kill pids.(sid) Sys.sigkill with Unix.Unix_error _ -> ())
          | _ -> ());
          Thread.delay 0.05
        done)
      ()
  in
  let active = Atomic.make n_clients in
  let stop_all = Atomic.make false in
  let stats =
    Array.init n_clients (fun _ ->
        {
          cs_accepted = []; cs_rejected_msgs = []; cs_rejected = 0; cs_backpressure = 0;
          cs_retries = 0; cs_lost = 0; cs_anomalies = 0; cs_announces = 0; cs_bad_sigs = 0;
        })
  in
  let misbehaving j = j < int_of_float (misbehave *. float_of_int n_clients) in
  let run_client j =
    let st = stats.(j) in
    let cid = servers + 1 + j in
    let gid = j mod groups in
    let head = heads.(gid) in
    let ct = Tcp.create ~node_id:cid ~send_timeout:2.0 () in
    Tcp.add_peer ct ~node_id:head ~host:"127.0.0.1" ~port:(Hashtbl.find ports head);
    let rng = Atom_util.Rng.create (seed lxor (0x5eed0 + cid)) in
    let on_announce ~epoch ~digest ~signature ~posts =
      st.cs_announces <- st.cs_announces + 1;
      if
        not
          (Node.BSign.verify_sealed ~pk:bulletin_pk { Bulletin.epoch; posts; digest } ~signature)
      then st.cs_bad_sigs <- st.cs_bad_sigs + 1
    in
    for s = 0 to per_client - 1 do
      (* Misbehaving clients flood (no pacing) and rotate garbage and
         misrouted blobs through their traffic; honest ones pace to the
         arrival rate with uniform jitter. *)
      let bad = misbehaving j in
      if not bad then
        Unix.sleepf ((0.5 +. (float_of_int (Atom_util.Rng.int_below rng 1000) /. 1000.)) /. arrival);
      let msg = Printf.sprintf "c%d.%d" cid s in
      let kind =
        if not bad then `Honest
        else
          match s mod 3 with
          | 0 -> `Garbage
          | 1 when groups > 1 -> `Misrouted
          | _ -> `Honest
      in
      let blob =
        match kind with
        | `Garbage -> Atom_util.Rng.bytes rng 48
        | `Misrouted ->
            (* A perfectly valid onion handed to the wrong entry head:
               stays well-formed end to end, so its absence from the
               bulletin is the rejected-never-published check. *)
            Pr.Wire.submission_to_bytes
              (Pr.submit rng net ~user:cid ~entry_gid:((gid + 1) mod groups) msg)
        | `Honest -> Pr.Wire.submission_to_bytes (Pr.submit rng net ~user:cid ~entry_gid:gid msg)
      in
      let pow = if pow_bits > 0 then Adm.pow_solve ~bits:pow_bits ~blob else "" in
      let deadline = Unix.gettimeofday () +. timeout in
      let verdict = ref `Pending in
      while !verdict = `Pending && Unix.gettimeofday () < deadline do
        (match
           Tcp.send ct ~dst:head
             (Ctrl.encode
                (Ctrl.Submit
                   { client = cid; port = Tcp.port ct; token = s; gid; epoch = 0; blob; pow }))
         with
        | Ok () -> ()
        | Error _ -> ());
        let wait_until = Unix.gettimeofday () +. 0.5 in
        while !verdict = `Pending && Unix.gettimeofday () < wait_until do
          match Tcp.recv ct ~timeout:0.25 with
          | Ok (_, frame) -> (
              match Ctrl.decode frame with
              | Some (Ctrl.Submit_ack { token; status; epoch; retry_ms; queue_len = _ })
                when token = s ->
                  if status = Ctrl.submit_accepted then verdict := `Accepted epoch
                  else if status = Ctrl.submit_retry then begin
                    st.cs_backpressure <- st.cs_backpressure + 1;
                    Unix.sleepf (float_of_int (max 1 retry_ms) /. 1000.);
                    verdict := `Resend
                  end
                  else verdict := `Rejected
              | Some (Ctrl.Bulletin_announce { epoch; digest; signature; posts }) ->
                  on_announce ~epoch ~digest ~signature ~posts
              | _ -> ())
          | Error _ -> ()
        done;
        match !verdict with
        | `Resend | `Pending ->
            verdict := `Pending;
            st.cs_retries <- st.cs_retries + 1
        | _ -> ()
      done;
      match (!verdict, kind) with
      | `Accepted e, `Honest -> st.cs_accepted <- (msg, e) :: st.cs_accepted
      | `Accepted _, _ -> st.cs_anomalies <- st.cs_anomalies + 1
      | `Rejected, `Misrouted ->
          st.cs_rejected <- st.cs_rejected + 1;
          st.cs_rejected_msgs <- msg :: st.cs_rejected_msgs
      | `Rejected, _ -> st.cs_rejected <- st.cs_rejected + 1
      | `Pending, `Honest -> st.cs_lost <- st.cs_lost + 1
      | _ -> ()
    done;
    Atomic.decr active;
    (* Stay on the line for bulletin announcements: the flush epoch is
       sealed, mixed and announced only after every client has finished
       submitting. *)
    while not (Atomic.get stop_all) do
      match Tcp.recv ct ~timeout:0.25 with
      | Ok (_, frame) -> (
          match Ctrl.decode frame with
          | Some (Ctrl.Bulletin_announce { epoch; digest; signature; posts }) ->
              on_announce ~epoch ~digest ~signature ~posts
          | _ -> ())
      | Error _ -> ()
    done;
    Tcp.close ct
  in
  let threads = List.init n_clients (fun j -> Thread.create run_client j) in
  let pool, own_pool =
    if domains > 1 then (Some (Atom_exec.Pool.create ~domains ()), true)
    else if domains = 1 then (None, false)
    else
      match Sys.getenv_opt "ATOM_DOMAINS" with
      | Some _ -> (Atom_exec.Pool.default (), false)
      | None ->
          let d = Atom_exec.Pool.auto_domains () in
          if d > 1 then (Some (Atom_exec.Pool.create ~domains:d ()), true) else (None, false)
  in
  let outcome =
    Node.run_ingest_coordinator ~obs
      ~clock:(fun () -> Unix.gettimeofday () -. t0)
      ?pool t ~config ~recv_timeout:0.1
      ~max_idle:(max 1 (int_of_float (timeout /. 0.1)))
      ~epoch_s ~min_epochs
      ~keep_collecting:(fun () -> Atomic.get active > 0)
      ()
  in
  if own_pool then Option.iter Atom_exec.Pool.shutdown pool;
  Atomic.set stop_all true;
  List.iter Thread.join threads;
  Atomic.set stop_watch true;
  Thread.join watcher;
  let child_failures = reap ~kill:false in
  Tcp.close t;
  let wall = Unix.gettimeofday () -. t0 in
  let epochs = outcome.Node.ing_epochs in
  let posts_of e = Array.to_list e.Node.ep_sealed.Bulletin.posts in
  let published = List.concat_map posts_of epochs in
  let sum f = Array.fold_left (fun acc st -> acc + f st) 0 stats in
  let accepted = List.concat_map (fun st -> st.cs_accepted) (Array.to_list stats) in
  (* The contract, checked per acked epoch: an accepted submission is on
     the bulletin of exactly the epoch its ack named. *)
  let lost =
    List.filter
      (fun (m, e) ->
        match List.find_opt (fun ep -> ep.Node.ep_epoch = e) epochs with
        | Some ep -> not (List.mem m (posts_of ep))
        | None -> true)
      accepted
  in
  let ghosts = List.filter (fun p -> not (List.mem_assoc p accepted)) published in
  let dupes =
    let sorted = List.sort compare published in
    let rec count = function
      | a :: (b :: _ as tl) -> (if a = b then 1 else 0) + count tl
      | _ -> 0
    in
    count sorted
  in
  let rejected_on_board =
    List.concat_map (fun st -> st.cs_rejected_msgs) (Array.to_list stats)
    |> List.filter (fun m -> List.mem m published)
  in
  let sigs_ok =
    List.for_all
      (fun ep -> Node.BSign.verify_sealed ~pk:bulletin_pk ep.Node.ep_sealed ~signature:ep.Node.ep_signature)
      epochs
  in
  let lost_acks = sum (fun st -> st.cs_lost) in
  let anomalies = sum (fun st -> st.cs_anomalies) in
  let bad_sigs = sum (fun st -> st.cs_bad_sigs) in
  let lat = Array.of_list (List.map (fun ep -> ep.Node.ep_latency_s) epochs) in
  let lp q = if Array.length lat = 0 then 0. else Atom_util.Stats.percentile lat q in
  let n_accepted = List.length accepted in
  let collect_s = float_of_int (List.length epochs) *. epoch_s in
  let sps = if collect_s > 0. then float_of_int n_accepted /. collect_s else 0. in
  let ok =
    outcome.Node.ing_abort = None
    && List.length epochs >= min_epochs
    && lost = [] && ghosts = [] && dupes = 0 && rejected_on_board = [] && lost_acks = 0
    && anomalies = 0 && sigs_ok && bad_sigs = 0 && child_failures = []
  in
  Printf.printf
    "clients: %d clients, %d epochs published, %d accepted (%d on bulletin), %d rejected, \
     %d backpressure acks, %d retries in %.2fs wall\n"
    n_clients (List.length epochs) n_accepted
    (List.length published)
    (sum (fun st -> st.cs_rejected))
    (sum (fun st -> st.cs_backpressure))
    (sum (fun st -> st.cs_retries))
    wall;
  List.iter
    (fun ep ->
      Printf.printf "  epoch %d: %d posts, %d units mixed, seal->bulletin %.3fs\n"
        ep.Node.ep_epoch
        (Array.length ep.Node.ep_sealed.Bulletin.posts)
        ep.Node.ep_mixed ep.Node.ep_latency_s)
    epochs;
  Printf.printf
    "clients: %.1f accepted submissions/s (%.2f per node), epoch seal->bulletin p50/p99 \
     %.3f/%.3f s, %d announcements heard\n"
    sps
    (sps /. float_of_int servers)
    (lp 50.) (lp 99.)
    (sum (fun st -> st.cs_announces));
  (match outcome.Node.ing_abort with
  | Some a -> Printf.printf "clients: coordinator ABORT: %s\n" a
  | None -> ());
  if outcome.Node.ing_failed_nodes <> [] then
    Printf.printf "clients: failed nodes %s (%d recovery sweeps)\n"
      (String.concat ", " (List.map string_of_int outcome.Node.ing_failed_nodes))
      outcome.Node.ing_recovery_rounds;
  if lost <> [] then
    Printf.printf "clients: LOST %d accepted submissions (e.g. %s @ epoch %d)\n"
      (List.length lost)
      (fst (List.hd lost))
      (snd (List.hd lost));
  if ghosts <> [] then
    Printf.printf "clients: %d bulletin posts nobody submitted\n" (List.length ghosts);
  if dupes > 0 then Printf.printf "clients: %d duplicated bulletin posts\n" dupes;
  if rejected_on_board <> [] then
    Printf.printf "clients: %d REJECTED submissions reached the bulletin\n"
      (List.length rejected_on_board);
  if lost_acks > 0 then Printf.printf "clients: %d honest submissions never acked\n" lost_acks;
  if anomalies > 0 then
    Printf.printf "clients: %d misbehaving submissions were accepted\n" anomalies;
  if (not sigs_ok) || bad_sigs > 0 then print_endline "clients: bulletin signature check FAILED";
  List.iter
    (fun (sid, why) -> Printf.printf "clients: node %d process failed: %s\n" sid why)
    child_failures;
  print_endline
    (if ok then "OK: every accepted submission is on the signed bulletin exactly once"
     else "FAILED: submission-plane contract violated");
  (match json_out with
  | None -> ()
  | Some path ->
      let b = Buffer.create 1024 in
      Buffer.add_string b
        (Printf.sprintf
           "{\n  \"schema\": \"atom-clients/1\",\n  \"clients\": %d,\n  \"servers\": %d,\n\
           \  \"groups\": %d,\n  \"epochs\": %d,\n  \"accepted\": %d,\n  \"published\": %d,\n\
           \  \"rejected\": %d,\n  \"backpressure\": %d,\n  \"retries\": %d,\n\
           \  \"lost_acks\": %d,\n  \"lost_published\": %d,\n  \"ghost_published\": %d,\n\
           \  \"duplicate_published\": %d,\n  \"rejected_on_bulletin\": %d,\n\
           \  \"anomalies\": %d,\n  \"announces\": %d,\n  \"bad_sigs\": %d,\n\
           \  \"submissions_per_sec\": %.3f,\n  \"submissions_per_sec_per_node\": %.4f,\n\
           \  \"epoch_latency_s\": {\"p50\": %.4f, \"p99\": %.4f},\n  \"wall_s\": %.3f,\n\
           \  \"failed_nodes\": [%s],\n  \"child_failures\": [%s],\n  \"abort\": %s,\n\
           \  \"verdict\": \"%s\"\n}\n"
           n_clients servers groups (List.length epochs) n_accepted (List.length published)
           (sum (fun st -> st.cs_rejected))
           (sum (fun st -> st.cs_backpressure))
           (sum (fun st -> st.cs_retries))
           lost_acks (List.length lost) (List.length ghosts) dupes
           (List.length rejected_on_board)
           anomalies
           (sum (fun st -> st.cs_announces))
           bad_sigs sps
           (sps /. float_of_int servers)
           (lp 50.) (lp 99.) wall
           (String.concat ", " (List.map string_of_int outcome.Node.ing_failed_nodes))
           (String.concat ", "
              (List.map
                 (fun (sid, why) -> Printf.sprintf "[%d, \"%s\"]" sid (json_escape why))
                 child_failures))
           (match outcome.Node.ing_abort with
           | Some a -> Printf.sprintf "\"%s\"" (json_escape a)
           | None -> "null")
           (if ok then "ok" else "failed"));
      Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc (Buffer.contents b));
      Printf.printf "wrote %s\n" path);
  if not ok then exit 1

let clients_cmd =
  let variant =
    Arg.(value & opt variant_conv Config.Basic & info [ "variant" ] ~doc:"basic|nizk.")
  in
  let n_clients =
    Arg.(value & opt int 200 & info [ "clients" ] ~doc:"Concurrent simulated clients.")
  in
  let per_client =
    Arg.(value & opt int 3 & info [ "per-client" ] ~doc:"Submissions per client.")
  in
  let arrival =
    Arg.(
      value & opt float 2.
      & info [ "arrival" ] ~doc:"Honest per-client submission arrival rate (1/s).")
  in
  let misbehave =
    Arg.(
      value & opt float 0.1
      & info [ "misbehave" ]
          ~doc:
            "Fraction of clients that flood and rotate garbage / misrouted blobs through \
             their traffic.")
  in
  let timeout =
    Arg.(value & opt float 120. & info [ "timeout" ] ~doc:"Bring-up / per-submission / idle budget (s).")
  in
  let epoch_s =
    Arg.(value & opt float 2. & info [ "epoch-s" ] ~doc:"Seal an ingest epoch every this many seconds.")
  in
  let min_epochs =
    Arg.(value & opt int 3 & info [ "min-epochs" ] ~doc:"Pipelined epochs to run at minimum.")
  in
  let pow_bits =
    Arg.(
      value & opt int 0
      & info [ "pow-bits" ] ~doc:"Hashcash difficulty (nodes enforce, clients solve); 0 disables.")
  in
  let ingest_rate =
    Arg.(value & opt float 20. & info [ "ingest-rate" ] ~doc:"Admission: sustained submissions/s per client.")
  in
  let ingest_burst =
    Arg.(value & opt float 8. & info [ "ingest-burst" ] ~doc:"Admission: token-bucket depth.")
  in
  let queue_cap =
    Arg.(value & opt int 4096 & info [ "queue-cap" ] ~doc:"Per-epoch intake bound (backpressure above).")
  in
  let kill_at =
    Arg.(
      value & opt float 0.
      & info [ "kill-at" ]
          ~doc:"SIGKILL one non-entry-head node this many seconds in (0 disables).")
  in
  let json_out =
    Arg.(value & opt (some string) None & info [ "json-out" ] ~doc:"Write the run summary JSON here.")
  in
  Cmd.v
    (Cmd.info "clients"
       ~doc:
         "Submission-plane load generator: an ingest-mode fleet on loopback, N concurrent \
          TCP clients (some misbehaving) submitting into entry groups, pipelined epochs \
          sealed on a timer, and a signed bulletin per epoch. Non-zero exit if any accepted \
          submission is lost or duplicated, anything rejected is published, or a node \
          process fails unexpectedly.")
    Term.(
      const run_clients $ variant $ n_clients $ per_client $ arrival $ misbehave
      $ cluster_servers $ cluster_groups $ cluster_group_size $ cluster_h $ cluster_iterations
      $ cluster_msg_bytes $ cluster_seed $ cluster_domains $ cluster_node_bin $ timeout
      $ epoch_s $ min_epochs $ pow_bits $ ingest_rate $ ingest_burst $ queue_cap
      $ cluster_loss $ kill_at $ json_out $ cluster_log_dir)

(* ---- sizing ---- *)

let run_sizing f groups bits h_max =
  Printf.printf "adversarial fraction f=%.2f, %d groups, 2^-%d failure budget\n" f groups bits;
  Printf.printf "%-4s %10s\n" "h" "k";
  for h = 1 to h_max do
    Printf.printf "%-4d %10d\n" h
      (Atom_topology.Group_sizing.required_group_size ~f ~groups ~h ~security_bits:bits ())
  done

let sizing_cmd =
  let f = Arg.(value & opt float 0.2 & info [ "f" ] ~doc:"Adversarial fraction.") in
  let groups = Arg.(value & opt int 1024 & info [ "groups" ] ~doc:"Number of groups.") in
  let bits = Arg.(value & opt int 64 & info [ "bits" ] ~doc:"Security bits.") in
  let h_max = Arg.(value & opt int 20 & info [ "h-max" ] ~doc:"Largest h to tabulate.") in
  Cmd.v
    (Cmd.info "sizing" ~doc:"Anytrust / many-trust group sizing (Appendix B).")
    Term.(const run_sizing $ f $ groups $ bits $ h_max)

(* ---- calibrate ---- *)

let run_calibrate backend =
  let g = Atom_group.Registry.by_name backend in
  Format.printf "%a@." Calibration.pp (Calibration.measure g ())

let calibrate_cmd =
  let backend =
    Arg.(value & opt string "zp-test" & info [ "group" ] ~doc:"p256|zp-test|zp-medium.")
  in
  Cmd.v
    (Cmd.info "calibrate" ~doc:"Measure this host's cryptographic costs.")
    Term.(const run_calibrate $ backend)

let () =
  let info = Cmd.info "atom_cli" ~doc:"Atom: horizontally scaling strong anonymity." in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            round_cmd; simulate_cmd; distributed_cmd; trace_cmd; cluster_cmd; clients_cmd;
            sizing_cmd; calibrate_cmd;
          ]))
