(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§6), plus the §7 cost estimates and four ablations.

   Usage:  dune exec bench/main.exe [-- experiment ...]
   With no arguments every experiment runs in order. Each block prints the
   measured/simulated series next to the paper's reported values; paper-vs-
   measured commentary lives in EXPERIMENTS.md.

   Microbenchmarks (Table 3) use bechamel's OLS estimator on the real
   cryptography; the figures use the calibrated discrete-event simulator
   (see lib/core/simulate.ml) or closed-form per-iteration math, exactly as
   the paper itself does for its Figure 11. *)

open Atom_core

let line () = print_endline (String.make 78 '-')

let header title =
  line ();
  Printf.printf "%s\n" title;
  line ()

(* --json: also write the fast-path primitive measurements (and the Table 3
   rows) to BENCH_crypto.json in the current directory, for CI smoke runs
   and for tracking the multi-exponentiation engine's speedups. *)
let json_mode = ref false

(* P-256 numbers recorded at the growth seed with this same harness on the
   same host — the "before" column of the engine's speedup claims. *)
let seed_baseline =
  [
    ("pow_gen", 1.812e-3);
    ("pow fixed-base", 1.749e-3);
    ("Enc", 3.750e-3);
    ("ShufProof verify (n=64)", 1.173e0);
  ]

(* ---- Table 3: cryptographic primitive latencies ---- *)

let bechamel_estimates (tests : Bechamel.Test.t list) : (string * float) list =
  let open Bechamel in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.4) ~kde:None () in
  List.concat_map
    (fun test ->
      let raw = Benchmark.all cfg instances test in
      let res = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
      Hashtbl.fold
        (fun name o acc ->
          match Analyze.OLS.estimates o with
          | Some (ns :: _) -> (name, ns /. 1e9) :: acc
          | _ -> acc)
        res [])
    tests

let table3 () =
  header "Table 3: latency of cryptographic primitives (32-byte messages)";
  let module G = Atom_group.P256 in
  let module El = Atom_elgamal.Elgamal.Make (G) in
  let module P = Atom_zkp.Proofs.Make (G) (El) in
  let module Shuf = Atom_zkp.Shuffle_proof.Make (G) (El) in
  let rng = Atom_util.Rng.create 0xbe7c4 in
  let kp = El.keygen rng and next = El.keygen rng in
  let m = G.random rng in
  let ct, randomness = El.enc rng kp.El.pk m in
  let pi = P.Enc_proof.prove rng ~pk:kp.El.pk ~context:"b" ct ~randomness in
  let out, rpi =
    P.Reenc_proof.reenc_with_proof rng ~share:kp.El.sk ~next_pk:(Some next.El.pk) ~context:"b" ct
  in
  let open Bechamel in
  let t name f = Test.make ~name (Staged.stage f) in
  let singles =
    bechamel_estimates
      [
        t "Enc" (fun () -> ignore (El.enc rng kp.El.pk m));
        t "ReEnc" (fun () ->
            ignore (El.reenc rng ~share:kp.El.sk ~next_pk:(Some next.El.pk) ct));
        t "EncProof prove" (fun () ->
            ignore (P.Enc_proof.prove rng ~pk:kp.El.pk ~context:"b" ct ~randomness));
        t "EncProof verify" (fun () ->
            ignore (P.Enc_proof.verify ~pk:kp.El.pk ~context:"b" ct pi));
        t "ReEncProof prove" (fun () ->
            ignore
              (P.Reenc_proof.reenc_with_proof rng ~share:kp.El.sk ~next_pk:(Some next.El.pk)
                 ~context:"b" ct));
        t "ReEncProof verify" (fun () ->
            ignore
              (P.Reenc_proof.verify ~eff_pk:kp.El.pk ~next_pk:(Some next.El.pk) ~context:"b"
                 ~input:ct ~output:out rpi));
      ]
  in
  (* Shuffle / ShufProof are amortized over a batch (the paper uses 1,024;
     we use 128 to keep the bench short and report per-1,024 figures). *)
  let batch_n = 128 in
  let batch = Array.init batch_n (fun _ -> [| fst (El.enc rng kp.El.pk m) |]) in
  let shuffled, witness = Option.get (El.shuffle_vec rng kp.El.pk batch) in
  let spi = Shuf.prove rng ~pk:kp.El.pk ~context:"b" ~input:batch ~output:shuffled ~witness in
  let batched =
    bechamel_estimates
      [
        t "Shuffle batch" (fun () -> ignore (El.shuffle_vec rng kp.El.pk batch));
        t "ShufProof prove batch" (fun () ->
            ignore (Shuf.prove rng ~pk:kp.El.pk ~context:"b" ~input:batch ~output:shuffled ~witness));
        t "ShufProof verify batch" (fun () ->
            ignore (Shuf.verify ~pk:kp.El.pk ~context:"b" ~input:batch ~output:shuffled spi));
      ]
  in
  let find name rows = try List.assoc name rows with Not_found -> nan in
  let scale_to_1024 v = v /. float_of_int batch_n *. 1024. in
  let rows =
    [
      ("Enc", find "Enc" singles, 1.40e-4);
      ("ReEnc", find "ReEnc" singles, 3.35e-4);
      ("Shuffle (1024 msgs)", scale_to_1024 (find "Shuffle batch" batched), 1.07e-1);
      ("EncProof prove", find "EncProof prove" singles, 1.62e-4);
      ("EncProof verify", find "EncProof verify" singles, 1.39e-4);
      ("ReEncProof prove", find "ReEncProof prove" singles, 6.55e-4);
      ("ReEncProof verify", find "ReEncProof verify" singles, 4.46e-4);
      ("ShufProof prove (1024)", scale_to_1024 (find "ShufProof prove batch" batched), 7.57e-1);
      ("ShufProof verify (1024)", scale_to_1024 (find "ShufProof verify batch" batched), 1.41e0);
    ]
  in
  Printf.printf "%-26s %14s %14s %8s\n" "primitive (P-256)" "measured (s)" "paper (s)" "ratio";
  List.iter
    (fun (name, measured, paper) ->
      Printf.printf "%-26s %14.3e %14.3e %8.2f\n" name measured paper (measured /. paper))
    rows;
  print_newline ();
  (* Fast-path primitives of the multi-exponentiation engine, against the
     numbers recorded at the growth seed (the shuffle-verify unit is n = 64,
     matching the baseline recording). *)
  let batch64 = Array.sub batch 0 64 in
  let shuffled64, witness64 = Option.get (El.shuffle_vec rng kp.El.pk batch64) in
  let spi64 =
    Shuf.prove rng ~pk:kp.El.pk ~context:"b" ~input:batch64 ~output:shuffled64 ~witness:witness64
  in
  let k1 = G.Scalar.random rng and k2 = G.Scalar.random rng in
  let x1 = G.random rng and x2 = G.random rng in
  let msm_pairs = Array.init 64 (fun _ -> (G.random rng, G.Scalar.random rng)) in
  let prims =
    bechamel_estimates
      [
        t "pow_gen" (fun () -> ignore (G.pow_gen k1));
        t "pow fixed-base" (fun () -> ignore (G.pow kp.El.pk k2));
        t "pow2" (fun () -> ignore (G.pow2 x1 k1 x2 k2));
        t "msm n=64" (fun () -> ignore (G.msm msm_pairs));
        t "ShufProof verify (n=64)" (fun () ->
            ignore (Shuf.verify ~pk:kp.El.pk ~context:"b" ~input:batch64 ~output:shuffled64 spi64));
      ]
  in
  let prim_names = [ "pow_gen"; "pow fixed-base"; "pow2"; "msm n=64"; "Enc"; "ShufProof verify (n=64)" ] in
  let prim_rows =
    List.map (fun n -> (n, if n = "Enc" then find "Enc" singles else find n prims)) prim_names
  in
  Printf.printf "%-26s %14s %14s %8s\n" "fast-path primitive" "measured (s)" "seed (s)" "speedup";
  List.iter
    (fun (name, v) ->
      match List.assoc_opt name seed_baseline with
      | Some b -> Printf.printf "%-26s %14.3e %14.3e %7.1fx\n" name v b (b /. v)
      | None -> Printf.printf "%-26s %14.3e %14s %8s\n" name v "-" "-")
    prim_rows;
  print_newline ();
  if !json_mode then begin
    let buf = Buffer.create 2048 in
    Buffer.add_string buf "{\n  \"schema\": \"atom-bench-crypto/1\",\n  \"group\": \"p256\",\n";
    Buffer.add_string buf
      "  \"baseline_source\": \"growth seed, same host and bechamel harness\",\n";
    Buffer.add_string buf "  \"primitives\": [\n";
    let np = List.length prim_rows in
    List.iteri
      (fun i (name, v) ->
        Buffer.add_string buf (Printf.sprintf "    {\"name\": %S, \"seconds\": %.6e" name v);
        (match List.assoc_opt name seed_baseline with
        | Some b ->
            Buffer.add_string buf
              (Printf.sprintf ", \"seed_seconds\": %.6e, \"speedup\": %.2f" b (b /. v))
        | None -> ());
        Buffer.add_string buf (if i = np - 1 then "}\n" else "},\n"))
      prim_rows;
    Buffer.add_string buf "  ],\n  \"table3\": [\n";
    let nr = List.length rows in
    List.iteri
      (fun i (name, measured, paper) ->
        Buffer.add_string buf
          (Printf.sprintf "    {\"name\": %S, \"seconds\": %.6e, \"paper_seconds\": %.6e}%s\n"
             name measured paper
             (if i = nr - 1 then "" else ",")))
      rows;
    Buffer.add_string buf "  ]\n}\n";
    let oc = open_out "BENCH_crypto.json" in
    output_string oc (Buffer.contents buf);
    close_out oc;
    Printf.printf "wrote BENCH_crypto.json\n\n"
  end

(* ---- Table 4: anytrust group setup latency (DKG) ---- *)

let table4 () =
  header "Table 4: latency to create an anytrust group (dealerless DKG)";
  let module G = (val Atom_group.Registry.zp_test ()) in
  let module Dkg = Atom_secret.Dkg.Make (G) in
  let rng = Atom_util.Rng.create 4 in
  let paper = [ (4, 7.4e-3); (8, 29.4e-3); (16, 93.3e-3); (32, 361.8e-3); (64, 1432.1e-3) ] in
  Printf.printf "%-12s %16s %16s %12s\n" "group size" "measured zp (s)" "paper p256 (s)" "exps";
  List.iter
    (fun (k, paper_s) ->
      let t0 = Unix.gettimeofday () in
      ignore (Dkg.run rng ~k ~threshold:k ());
      let dt = Unix.gettimeofday () -. t0 in
      Printf.printf "%-12d %16.4f %16.4f %12d\n" k dt paper_s
        (Dkg.exponentiation_count ~k ~threshold:k))
    paper;
  Printf.printf
    "(shape check: quadratic in k on both sides; absolute values differ by the\n\
    \ group-backend cost — see EXPERIMENTS.md)\n\n"

(* ---- Figures 5/6/7: one-group mixing iteration ---- *)

let fig5 () =
  header "Figure 5: time per mixing iteration vs #messages (k = 32)";
  Printf.printf "%-10s %14s %14s %10s\n" "messages" "trap (s)" "nizk (s)" "nizk/trap";
  List.iter
    (fun n ->
      let trap =
        Simulate.one_iteration_seconds ~cal:Calibration.paper ~variant:Config.Trap ~k:32
          ~units:(2 * n) ~points:1 ()
      in
      let nizk =
        Simulate.one_iteration_seconds ~cal:Calibration.paper ~variant:Config.Nizk ~k:32 ~units:n
          ~points:1 ()
      in
      Printf.printf "%-10d %14.1f %14.1f %10.2f\n" n trap nizk (nizk /. trap))
    [ 128; 256; 512; 1024; 2048; 4096; 8192; 16384 ];
  Printf.printf "(paper: both linear; NIZK \xe2\x89\x88 4x trap; trap ~700 s and NIZK ~2800 s at 16384)\n\n"

let fig6 () =
  header "Figure 6: time per mixing iteration vs group size (1,024 messages)";
  Printf.printf "%-10s %14s %14s\n" "group k" "trap (s)" "nizk (s)";
  List.iter
    (fun k ->
      let trap =
        Simulate.one_iteration_seconds ~cal:Calibration.paper ~variant:Config.Trap ~k ~units:2048
          ~points:1 ()
      in
      let nizk =
        Simulate.one_iteration_seconds ~cal:Calibration.paper ~variant:Config.Nizk ~k ~units:1024
          ~points:1 ()
      in
      Printf.printf "%-10d %14.1f %14.1f\n" k trap nizk)
    [ 4; 8; 16; 32; 64 ];
  Printf.printf "(paper: linear in k; each server adds one serial shuffle+reencrypt stage)\n\n"

let fig7 () =
  header "Figure 7: speed-up of one mixing iteration vs cores (baseline 4 cores)";
  let t variant cores =
    Simulate.one_iteration_seconds ~cal:Calibration.paper ~variant ~k:32 ~units:1024 ~points:1
      ~cores ~intra_parallel:true ~include_network:false ()
  in
  Printf.printf "%-8s %12s %12s\n" "cores" "trap" "nizk";
  List.iter
    (fun cores ->
      Printf.printf "%-8d %11.2fx %11.2fx\n" cores
        (t Config.Trap 4 /. t Config.Trap cores)
        (t Config.Nizk 4 /. t Config.Nizk cores))
    [ 4; 8; 16; 36 ];
  Printf.printf "(paper: trap near-linear ~8x at 36 cores; NIZK sub-linear ~4-5x)\n\n"

(* ---- Figure 8: network topology / latency model ---- *)

let fig8 () =
  header "Figure 8: Tor-derived heterogeneous fleet and latency clusters";
  let open Atom_sim in
  let engine = Engine.create () in
  let net = Net.create engine in
  let rng = Atom_util.Rng.create 8 in
  let machines =
    Array.init 1024 (fun id ->
        Machine.create engine ~id ~cores:(Machine.paper_cores rng)
          ~bandwidth:(Machine.paper_bandwidth rng)
          ~cluster:(Atom_util.Rng.int_below rng 8))
  in
  let count p = Array.fold_left (fun acc m -> if p m then acc + 1 else acc) 0 machines in
  Printf.printf "cores:     4: %d   8: %d   16: %d   32: %d   (paper: 80%%/10%%/5%%/5%%)\n"
    (count (fun m -> m.Machine.cores = 4))
    (count (fun m -> m.Machine.cores = 8))
    (count (fun m -> m.Machine.cores = 16))
    (count (fun m -> m.Machine.cores = 32));
  let mbps b = b *. 8. /. 1e6 in
  Printf.printf "bandwidth: <100 Mb/s: %d   100-200: %d   200-300: %d   >300: %d\n"
    (count (fun m -> mbps m.Machine.bandwidth < 100.))
    (count (fun m -> mbps m.Machine.bandwidth >= 100. && mbps m.Machine.bandwidth < 200.))
    (count (fun m -> mbps m.Machine.bandwidth >= 200. && mbps m.Machine.bandwidth < 300.))
    (count (fun m -> mbps m.Machine.bandwidth >= 300.));
  let lats = ref [] in
  for _ = 1 to 5000 do
    let a = machines.(Atom_util.Rng.int_below rng 1024) in
    let b = machines.(Atom_util.Rng.int_below rng 1024) in
    if a.Machine.id <> b.Machine.id then lats := Net.latency net a b :: !lats
  done;
  let lats = Array.of_list !lats in
  Printf.printf "pair latency: min %.0f ms  median %.0f ms  p90 %.0f ms  max %.0f ms  (paper: 40-160 ms)\n\n"
    (1000. *. Atom_util.Stats.percentile lats 0.)
    (1000. *. Atom_util.Stats.median lats)
    (1000. *. Atom_util.Stats.percentile lats 90.)
    (1000. *. Atom_util.Stats.percentile lats 100.)

(* ---- Figures 9/10/11: end-to-end simulation ---- *)

let paper_cfg n = { Config.paper_default with Config.n_servers = n; Config.n_groups = n }

let fig9 () =
  header "Figure 9: end-to-end latency vs #messages (1,024 servers, T = 10)";
  Printf.printf "%-12s %18s %18s\n" "messages" "microblog (s)" "dialing (s)";
  List.iter
    (fun m ->
      let mb = Simulate.run (Simulate.microblog (paper_cfg 1024) ~n_messages:m) in
      let dl = Simulate.run (Simulate.dialing (paper_cfg 1024) ~n_messages:m) in
      Printf.printf "%-12d %18.0f %18.0f\n" m mb.Simulate.latency dl.Simulate.latency)
    [ 250_000; 500_000; 750_000; 1_000_000; 1_250_000; 1_500_000; 1_750_000; 2_000_000 ];
  Printf.printf "(paper: linear; ~1700 s for 1M microblog messages; dialing slope lower)\n\n"

let fig10 () =
  header "Figure 10: speed-up vs #servers (1M microblog messages)";
  let base = ref None in
  Printf.printf "%-10s %14s %14s %10s\n" "servers" "latency (s)" "hours" "speedup";
  List.iter
    (fun n ->
      let r = Simulate.run (Simulate.microblog (paper_cfg n) ~n_messages:1_000_000) in
      let l = r.Simulate.latency in
      if !base = None then base := Some l;
      Printf.printf "%-10d %14.0f %14.2f %9.2fx\n" n l (l /. 3600.) (Option.get !base /. l))
    [ 128; 256; 512; 1024 ];
  Printf.printf "(paper: 3.81 h @128 -> 0.47 h @1024, linear speedup)\n\n"

let fig11 () =
  header "Figure 11: simulated speed-up, 1B microblog messages (huge networks)";
  (* The constant per-layer overhead is fitted to the paper's measurements
     (~2,000 s per layer at this scale), attributed in §6.2 to connection
     management: G^2 inter-layer links and trustee TLS churn. *)
  let sizes = [ 1024; 2048; 4096; 8192; 16384; 32768 ] in
  let base = ref None in
  Printf.printf "%-10s %14s %12s %10s %12s\n" "servers" "latency (s)" "hours" "speedup" "ideal";
  List.iteri
    (fun i n ->
      let p =
        { (Simulate.microblog (paper_cfg n) ~n_messages:1_000_000_000) with
          Simulate.layer_overhead = 2000. }
      in
      let r = Simulate.run p in
      let l = r.Simulate.latency in
      if !base = None then base := Some l;
      Printf.printf "%-10d %14.0f %12.1f %9.2fx %11.0fx\n" n l (l /. 3600.)
        (Option.get !base /. l)
        (float_of_int (1 lsl i)))
    sizes;
  Printf.printf "(paper: 483.6 h @2^10 -> 20.5 h @2^15; 23.6x vs ideal 32x)\n\n"

(* ---- Table 12: comparison with prior systems ---- *)

let table12 () =
  header "Table 12: latency to support one million users";
  let riposte = Atom_baseline.Riposte.latency_minutes ~messages:1_000_000 in
  let vuvuzela = Atom_baseline.Vuvuzela.dial_latency_minutes ~users:1_000_000 in
  Printf.printf "%-22s %12s %12s %12s %12s\n" "system" "microblog" "speedup" "dialing"
    "slowdown";
  List.iter
    (fun n ->
      let mb = Simulate.run (Simulate.microblog (paper_cfg n) ~n_messages:1_000_000) in
      let dl = Simulate.run (Simulate.dialing (paper_cfg n) ~n_messages:1_000_000) in
      let mb_min = mb.Simulate.latency /. 60. and dl_min = dl.Simulate.latency /. 60. in
      Printf.printf "%-22s %9.1f min %11.1fx %9.1f min %11.0fx\n"
        (Printf.sprintf "Atom %dx mixed" n)
        mb_min (riposte /. mb_min) dl_min (dl_min /. vuvuzela))
    [ 128; 256; 512; 1024 ];
  Printf.printf "%-22s %9.1f min %12s %12s %12s\n" "Riposte 3x36-core" riposte "1x" "-" "-";
  Printf.printf "%-22s %12s %12s %9.1f min %11s\n" "Vuvuzela/Alpenhorn" "-" "-" vuvuzela "1x";
  Printf.printf
    "(paper: Atom 28.2 min @1024 = 23.7x vs Riposte; 27.9 min dialing = 56x slower\n\
    \ than Vuvuzela)\n\n"

(* ---- Figure 13: many-trust group sizing ---- *)

let fig13 () =
  header "Figure 13: required group size k vs required honest servers h (f=0.2, G=1024)";
  Printf.printf "%-6s %18s %18s\n" "h" "binomial tail k" "k(1) + h - 1";
  for h = 1 to 20 do
    Printf.printf "%-6d %18d %18d\n" h
      (Atom_topology.Group_sizing.paper_config ~h)
      (Atom_topology.Group_sizing.paper_heuristic ~h)
  done;
  Printf.printf "(paper: ~32 at h=1 rising to ~70 at h=20)\n\n"

(* ---- §7: deployment cost estimates ---- *)

let costs () =
  header "Section 7: estimated deployment costs (AWS, Sept 2017 prices)";
  List.iter
    (fun cores ->
      let e = Cost_model.server_estimate ~cores () in
      Printf.printf
        "%2d-core server: compute $%.0f/mo, egress $%.2f/mo; reenc %.0f msg/s, shuffle %.0f \
         msg/s, rate-match %.0f KB/s\n"
        cores e.Cost_model.compute_month e.Cost_model.bandwidth_month
        e.Cost_model.reenc_msgs_per_sec e.Cost_model.shuffle_msgs_per_sec
        (e.Cost_model.bandwidth_bytes_per_sec /. 1e3))
    [ 4; 36 ];
  Printf.printf "(paper: $146/mo + $7.20/mo for 4 cores; $1,165/mo + ~$65/mo for 36)\n\n"

(* ---- Ablations ---- *)

let ablation_topology () =
  header "Ablation: square vs iterated-butterfly topology (64 groups)";
  let cfg topology = { (paper_cfg 64) with Config.topology } in
  let series name topology =
    let r = Simulate.run (Simulate.microblog (cfg topology) ~n_messages:65_536) in
    let t = Config.topology (cfg topology) in
    Printf.printf "%-12s iterations %4d  fan-out %5d  latency %10.0f s\n" name
      t.Atom_topology.Topology.iterations
      (Array.length (t.Atom_topology.Topology.neighbors ~iter:0 ~group:0))
      r.Simulate.latency
  in
  series "square" (Config.Square 10);
  series "butterfly" (Config.Butterfly (2 * 6));
  Printf.printf "(§3: the square network wins on depth, hence the paper's choice)\n\n"

let ablation_mixing () =
  header "Ablation: mixing quality vs iteration count T (square, 4 groups, 16 msgs)";
  Printf.printf "%-6s %24s\n" "T" "joint-exit TV distance";
  List.iter
    (fun t ->
      let topo = Atom_topology.Topology.square ~groups:4 ~iterations:t in
      let rng = Atom_util.Rng.create (100 + t) in
      let groups = 4 and messages = 16 and trials = 4000 in
      let per_group = messages / groups in
      let counts = Array.make (groups * groups) 0 in
      for _ = 1 to trials do
        let final = Atom_topology.Topology.simulate rng topo ~messages in
        let g0 = final.(0) / per_group and g1 = final.(groups) / per_group in
        counts.((g0 * groups) + g1) <- counts.((g0 * groups) + g1) + 1
      done;
      Printf.printf "%-6d %24.4f\n" t (Atom_util.Stats.tv_distance_uniform counts))
    [ 1; 2; 4; 6; 8; 10 ];
  Printf.printf "(Hastad: O(1) iterations reach near-uniform; paper uses T = 10)\n\n"

let ablation_traps () =
  header "Ablation: trap-based tamper detection probability vs #tampered units";
  let rng = Atom_util.Rng.create 77 in
  Printf.printf "%-8s %14s %14s\n" "kappa" "measured" "1 - 2^-k";
  List.iter
    (fun kappa ->
      let trials = 20_000 in
      let detected = ref 0 in
      for _ = 1 to trials do
        (* A tamperer removes kappa units; each is a trap with prob 1/2
           (submission order is random and ciphertexts indistinguishable). *)
        let caught = ref false in
        for _ = 1 to kappa do
          if Atom_util.Rng.bool rng then caught := true
        done;
        if !caught then incr detected
      done;
      Printf.printf "%-8d %14.4f %14.4f\n" kappa
        (float_of_int !detected /. float_of_int trials)
        (1. -. (1. /. float_of_int (1 lsl kappa))))
    [ 1; 2; 3; 4; 6; 8 ];
  Printf.printf "(§4.4: removing k messages succeeds with probability 2^-k)\n\n"

let ablation_group () =
  header "Ablation: group backend costs (this host): Zp-96 / Zp-256 / P-256";
  let measure name g =
    let cal = Calibration.measure g ~shuffle_batch:64 () in
    Printf.printf "%-8s Enc %.2e  ReEnc %.2e  Shuffle/msg %.2e  ShufProof/msg %.2e\n" name
      cal.Calibration.enc cal.Calibration.reenc cal.Calibration.shuffle_per_msg
      cal.Calibration.shufproof_prove_per_msg
  in
  measure "zp-96" (Atom_group.Registry.zp_test ());
  measure "zp-256" (Atom_group.Registry.zp_medium ());
  measure "p256" (Atom_group.Registry.p256 ());
  Printf.printf "(tests run on Zp-96 for speed; figures use the paper's Table 3 constants)\n\n"

let ablation_pipeline () =
  header "Ablation: pipelined operation (4.7) — throughput vs latency";
  let cfg = { (paper_cfg 256) with Config.n_groups = 64 } in
  let p = Simulate.microblog cfg ~n_messages:100_000 in
  let plain = Simulate.run p in
  let piped = Simulate.run_pipelined p ~rounds:8 in
  Printf.printf "unpipelined round latency:        %10.0f s\n" plain.Simulate.latency;
  Printf.printf "pipelined: first output at        %10.0f s\n" piped.Simulate.first_output;
  Printf.printf "pipelined: inter-round output gap %10.0f s  (one layer's worth)\n"
    piped.Simulate.output_gap;
  Printf.printf
    "(4.7: layer-dedicated servers emit one round per group-latency; throughput x%.1f)\n\n"
    (plain.Simulate.latency /. piped.Simulate.output_gap)

let ablation_loadbalance () =
  header "Ablation: capacity-weighted group assignment (section 7) — risk tradeoff";
  let n = 100 in
  let malicious s = s < 20 in
  let beacon = Beacon.create ~seed:70 in
  let risk label weights =
    let p =
      Group_formation.estimate_all_malicious ~trials:400
        ~form:(fun ~round ->
          Group_formation.form_weighted beacon ~round ~weights ~n_groups:16 ~group_size:5 ())
        ~malicious
    in
    Printf.printf "%-34s Pr[some group all-malicious] = %.4f\n" label p
  in
  risk "uniform weights" (Array.make n 1.);
  risk "heavy honest servers (5x)" (Array.init n (fun i -> if malicious i then 1. else 5.));
  risk "heavy adversarial servers (5x)" (Array.init n (fun i -> if malicious i then 5. else 1.));
  Printf.printf
    "(section 7: weighting by capacity helps only if the adversary does not hold the\n\
    \ heavy servers; Tor makes the same bet)\n\n"

(* ---- main ---- *)

(* ---- Wire codec throughput ----

   Encode/decode bandwidth of the binary wire format on the transport PR's
   hot payloads: a 1,024-ciphertext Batch message and a shuffle proof over
   the same batch. Decode is measured once per validation policy: the
   structural parse is shared, so the spread between [deferred]
   (structural only), [batched] (one amortized membership pass over the
   canonical QR⁺ range), and [eager] (per-element fail-fast) is exactly
   the cost of when the membership check runs. The schema-v2 JSON records
   the policy per item so the CI gate can hold batched decode to at least
   encode bandwidth. *)

let wire_bench () =
  header "Wire codec: encode/decode throughput (zp-test group, 1,024-unit batch)";
  let module G = (val Atom_group.Registry.zp_test ()) in
  let module El = Atom_elgamal.Elgamal.Make (G) in
  let module Shuf = Atom_zkp.Shuffle_proof.Make (G) (El) in
  let module C = Atom_wire.Codec.Make (G) (El) in
  let module V = Atom_wire.Validation in
  let rng = Atom_util.Rng.create 0xbe7c in
  let kp = El.keygen rng in
  let units =
    Array.init 1024 (fun _ -> fst (El.enc_vec rng kp.El.pk [| G.random rng; G.random rng |]))
  in
  let msg =
    C.Batch
      { gid = 0; iter = 1; src_gid = 1; sent_at = 0; input = units; output = units;
        proofs = Array.make 1024 "" }
  in
  let encoded = C.encode msg in
  let shuffled, witness = Option.get (El.shuffle_vec rng kp.El.pk units) in
  let spi = Shuf.prove rng ~pk:kp.El.pk ~context:"w" ~input:units ~output:shuffled ~witness in
  let sbytes = Shuf.to_bytes spi in
  let open Bechamel in
  let t name f = Test.make ~name (Staged.stage f) in
  let est =
    bechamel_estimates
      [
        t "batch encode" (fun () -> ignore (C.encode msg));
        t "batch decode eager" (fun () -> ignore (C.decode ~policy:V.Eager encoded));
        t "batch decode batched" (fun () -> ignore (C.decode ~policy:V.Batched encoded));
        t "batch decode deferred" (fun () -> ignore (C.decode ~policy:V.Deferred encoded));
        t "shufproof encode" (fun () -> ignore (Shuf.to_bytes spi));
        t "shufproof decode" (fun () -> ignore (Shuf.of_bytes sbytes));
      ]
  in
  let find name = try List.assoc name est with Not_found -> nan in
  (* [validation] per item: "none" for encodes (nothing to check),
     "eager"/"batched"/"deferred" for the policy driving a codec decode,
     "eager" for the shuffle-proof decode (its [of_bytes] validates every
     element inline). *)
  let rows =
    [
      ("batch encode", "none", String.length encoded, find "batch encode");
      ("batch decode eager", "eager", String.length encoded, find "batch decode eager");
      ("batch decode batched", "batched", String.length encoded, find "batch decode batched");
      ("batch decode deferred", "deferred", String.length encoded, find "batch decode deferred");
      ("shufproof encode", "none", String.length sbytes, find "shufproof encode");
      ("shufproof decode", "eager", String.length sbytes, find "shufproof decode");
    ]
  in
  Printf.printf "%-24s %-10s %12s %14s %12s\n" "operation" "validation" "bytes" "seconds"
    "MB/s";
  List.iter
    (fun (name, validation, bytes, s) ->
      Printf.printf "%-24s %-10s %12d %14.3e %12.1f\n" name validation bytes s
        (float_of_int bytes /. s /. 1e6))
    rows;
  print_newline ();
  if !json_mode then begin
    let buf = Buffer.create 1024 in
    Buffer.add_string buf "{\n  \"schema\": \"atom-bench-wire/2\",\n  \"group\": \"zp-test\",\n";
    Buffer.add_string buf
      (Printf.sprintf "  \"host_cores\": %d,\n" (Domain.recommended_domain_count ()));
    Buffer.add_string buf "  \"batch_units\": 1024,\n  \"items\": [\n";
    let n = List.length rows in
    List.iteri
      (fun i (name, validation, bytes, s) ->
        Buffer.add_string buf
          (Printf.sprintf
             "    {\"name\": %S, \"validation\": %S, \"bytes\": %d, \"seconds\": %.6e, \
              \"mb_per_s\": %.2f}%s\n"
             name validation bytes s
             (float_of_int bytes /. s /. 1e6)
             (if i = n - 1 then "" else ",")))
      rows;
    Buffer.add_string buf "  ]\n}\n";
    let oc = open_out "BENCH_wire.json" in
    output_string oc (Buffer.contents buf);
    close_out oc;
    Printf.printf "wrote BENCH_wire.json\n\n"
  end

(* ---- parallel: domain-pool scaling of the crypto hot paths ---- *)

(* Wall-clock samples: [warmup] untimed runs (page in tables, warm the
   arenas and caches, let the first stop-the-world storms pass), then
   [reps] timed ones — bechamel's quota machinery suits microsecond
   primitives, not multi-second pooled batches. Speedups are gated on the
   median (robust against a single noisy rep flapping a CI gate); the min
   and the spread are reported alongside so a noisy run is visible in the
   JSON rather than silently absorbed. *)
type timing = { med : float; mn : float; spread : float }

let time_stats ~(warmup : int) ~(reps : int) (f : unit -> unit) : timing =
  for _ = 1 to warmup do
    f ()
  done;
  let samples = Array.make reps 0.0 in
  for i = 0 to reps - 1 do
    let t0 = Unix.gettimeofday () in
    f ();
    samples.(i) <- Unix.gettimeofday () -. t0
  done;
  Array.sort compare samples;
  let med =
    if reps mod 2 = 1 then samples.(reps / 2)
    else (samples.((reps / 2) - 1) +. samples.(reps / 2)) /. 2.0
  in
  { med; mn = samples.(0); spread = (samples.(reps - 1) -. samples.(0)) /. med }

let parallel () =
  header "parallel: domain-pool scaling of the crypto batches (1/2/4/8 domains)";
  let domain_counts = [ 1; 2; 4; 8 ] in
  let warmup = 1 and reps = 5 in
  (* Paper-shaped op mixes (Table 3 / §6): fixed-base batch and big MSM on
     the prototype's curve, and the acceptance workload — one batched
     shuffle-proof verification over n = 1024 units — on the 256-bit
     Schnorr group, where a verification is one ~10·n-term
     multi-exponentiation. Every workload returns a fingerprint of its
     output so the scaling claim carries a bit-identity check: the pool
     must change the wall clock, never the bytes. *)
  let workloads =
    let p256 =
      let module G = Atom_group.P256 in
      let rng = Atom_util.Rng.create 0xbe7c in
      let ks = Array.init 1024 (fun _ -> G.Scalar.random rng) in
      let pairs = Array.init 1024 (fun i -> (G.pow_gen ks.((i * 31) mod 1024), ks.(i))) in
      [
        ( "pow_gen_batch n=1024", "p256",
          fun pool ->
            Atom_hash.Sha256.digest_list
              (Array.to_list (Array.map G.to_bytes (G.pow_gen_batch ~pool ks))) );
        ("msm n=1024", "p256", fun pool -> G.to_bytes (G.msm ~pool pairs));
      ]
    in
    let shuffle_verify =
      let module G = (val Atom_group.Registry.zp_medium ()) in
      let module El = Atom_elgamal.Elgamal.Make (G) in
      let module Shuf = Atom_zkp.Shuffle_proof.Make (G) (El) in
      let rng = Atom_util.Rng.create 0xbe7d in
      let kp = El.keygen rng in
      let units = Array.init 1024 (fun _ -> fst (El.enc_vec rng kp.El.pk [| G.random rng |])) in
      let shuffled, witness = Option.get (El.shuffle_vec rng kp.El.pk units) in
      let pi = Shuf.prove rng ~pk:kp.El.pk ~context:"par" ~input:units ~output:shuffled ~witness in
      [
        ( "shuffle-verify n=1024", "zp-256",
          fun pool ->
            if Shuf.verify ~pool ~pk:kp.El.pk ~context:"par" ~input:units ~output:shuffled pi
            then "accept"
            else "reject" );
      ]
    in
    p256 @ shuffle_verify
  in
  (* The calibrated model's view of the same knob: per-core provisioning
     of one NIZK mixing iteration (Figure 7's axis), to cross-check the
     measured pool curve against what the cost model promises. *)
  let model_seconds cores =
    Simulate.one_iteration_seconds ~cal:Calibration.paper ~variant:Config.Nizk ~k:32 ~units:1024
      ~points:1 ~cores ~intra_parallel:true ~include_network:false ()
  in
  let model_base = model_seconds 1 in
  let host_cores = Domain.recommended_domain_count () in
  let promoted_words () =
    let _, promoted, _ = Gc.counters () in
    promoted
  in
  Printf.printf "%-24s %-8s %8s %11s %11s %8s %8s %10s  %s\n" "workload" "group" "domains"
    "median_s" "min_s" "speedup" "model" "mwords/run" "identical";
  let results =
    List.map
      (fun (name, group, run) ->
        let reference = ref "" in
        let rows =
          List.map
            (fun domains ->
              (* Live obs ctx so the pool's per-domain GC telemetry
                 (exec.pool.minor_words / promoted_words) is recorded; the
                 caller-domain deltas are sampled directly around the timed
                 reps. Together they show where allocation happens, not
                 just how long the job took. *)
              let obs = Atom_obs.Ctx.create () in
              let reg = Atom_obs.Ctx.metrics obs in
              let pool = Atom_exec.Pool.create ~obs ~domains () in
              let fp = ref "" in
              Fun.protect
                ~finally:(fun () -> Atom_exec.Pool.shutdown pool)
                (fun () ->
                  for _ = 1 to warmup do
                    fp := run pool
                  done;
                  let m0 = Gc.minor_words () and p0 = promoted_words () in
                  let pm0 = Atom_obs.Metrics.counter_value reg "exec.pool.minor_words" in
                  let pp0 = Atom_obs.Metrics.counter_value reg "exec.pool.promoted_words" in
                  let timing = time_stats ~warmup:0 ~reps (fun () -> fp := run pool) in
                  let per_run x = x /. float_of_int reps in
                  let gc_caller_minor = per_run (Gc.minor_words () -. m0) in
                  let gc_caller_promoted = per_run (promoted_words () -. p0) in
                  let gc_pool_minor =
                    per_run (Atom_obs.Metrics.counter_value reg "exec.pool.minor_words" -. pm0)
                  in
                  let gc_pool_promoted =
                    per_run (Atom_obs.Metrics.counter_value reg "exec.pool.promoted_words" -. pp0)
                  in
                  if domains = 1 then reference := !fp;
                  ( domains, timing,
                    (gc_caller_minor, gc_caller_promoted, gc_pool_minor, gc_pool_promoted),
                    !fp = !reference )))
            domain_counts
        in
        let base = match rows with (_, t, _, _) :: _ -> t.med | [] -> nan in
        let identical = List.for_all (fun (_, _, _, same) -> same) rows in
        List.iter
          (fun (domains, t, (cm, _, pm, _), _) ->
            Printf.printf "%-24s %-8s %8d %11.4f %11.4f %7.2fx %7.2fx %10.2f  %s\n" name group
              domains t.med t.mn (base /. t.med)
              (model_base /. model_seconds domains)
              ((cm +. pm) /. 1e6)
              (if identical then "yes" else "NO"))
          rows;
        (name, group, rows, base, identical))
      workloads
  in
  if List.exists (fun (_, _, _, _, identical) -> not identical) results then begin
    Printf.printf "FAILED: pooled output diverged from the 1-domain reference\n";
    exit 1
  end;
  (* The measured recommendation: the largest pool size whose median
     speedup on the acceptance workload (the batched shuffle verification)
     clears a 1.15x bar — i.e. parallelism that pays for itself on this
     host. Runtime defaults read this back (Pool.auto_domains), guarded by
     host_cores so a 1-core CI measurement never caps a real deployment. *)
  let recommended =
    List.fold_left
      (fun acc (name, _, rows, base, _) ->
        if name <> "shuffle-verify n=1024" then acc
        else
          List.fold_left
            (fun acc (domains, t, _, _) -> if base /. t.med >= 1.15 then max acc domains else acc)
            acc rows)
      1 results
  in
  Printf.printf
    "(speedup = t(1 domain)/t(d) on medians of %d reps after %d warmup; model = calibrated \
     per-core provisioning, Figure 7 axis; mwords/run = millions of minor words allocated per \
     run, caller + pool domains)\n\
     host cores: %d; measured recommended_domains: %d\n\n"
    reps warmup host_cores recommended;
  if !json_mode then begin
    let buf = Buffer.create 2048 in
    Buffer.add_string buf "{\n  \"schema\": \"atom-bench-parallel/2\",\n";
    Buffer.add_string buf (Printf.sprintf "  \"recommended_domains\": %d,\n" recommended);
    Buffer.add_string buf (Printf.sprintf "  \"host_cores\": %d,\n" host_cores);
    Buffer.add_string buf (Printf.sprintf "  \"reps\": %d,\n  \"warmup\": %d,\n" reps warmup);
    Buffer.add_string buf
      (Printf.sprintf "  \"domains\": [%s],\n"
         (String.concat ", " (List.map string_of_int domain_counts)));
    Buffer.add_string buf "  \"workloads\": [\n";
    let nw = List.length results in
    List.iteri
      (fun wi (name, group, rows, base, identical) ->
        Buffer.add_string buf
          (Printf.sprintf
             "    {\"name\": %S, \"group\": %S, \"n\": 1024, \"identical\": %b,\n     \"results\": [\n"
             name group identical);
        let nr = List.length rows in
        List.iteri
          (fun i (domains, t, (cm, cp, pm, pp), _) ->
            Buffer.add_string buf
              (Printf.sprintf
                 "       {\"domains\": %d, \"seconds\": %.6e, \"seconds_min\": %.6e, \
                  \"spread\": %.3f, \"speedup\": %.3f, \"model_speedup\": %.3f,\n\
                 \        \"gc\": {\"caller_minor_words_per_run\": %.0f, \
                  \"caller_promoted_words_per_run\": %.0f, \"pool_minor_words_per_run\": %.0f, \
                  \"pool_promoted_words_per_run\": %.0f}}%s\n"
                 domains t.med t.mn t.spread (base /. t.med)
                 (model_base /. model_seconds domains)
                 cm cp pm pp
                 (if i = nr - 1 then "" else ",")))
          rows;
        Buffer.add_string buf (Printf.sprintf "     ]}%s\n" (if wi = nw - 1 then "" else ",")))
      results;
    Buffer.add_string buf "  ]\n}\n";
    let oc = open_out "BENCH_parallel.json" in
    output_string oc (Buffer.contents buf);
    close_out oc;
    Printf.printf "wrote BENCH_parallel.json\n\n"
  end

(* ---- ingest: the submission plane ----

   Three layers, measured separately so a regression names its culprit:
   the admission verdict itself (token bucket + structural checks), the
   intake path (dedup digest + bounded queue + seal), and the pipelined
   epoch end to end (admit with real proof verification, mix through
   Algorithm 2, seal and sign the bulletin). The hostile-mix pass reports
   rejection rates under flooding and garbage — the numbers the CI gate
   pins. *)

let ingest_bench () =
  header "Submission plane: admission, intake, pipelined epochs (zp-test group)";
  let module G = (val Atom_group.Registry.zp_test ()) in
  let module Pr = Protocol.Make (G) in
  let module Adm = Atom_ingest.Admission in
  let module Intake = Atom_ingest.Intake in
  let module BSign = Bulletin.Signer (G) in
  let rng = Atom_util.Rng.create 0x1d9e57 in
  (* Cheap unique blobs for the non-cryptographic layers: an 8-byte
     counter in a fixed-size buffer, no allocation churn beyond the
     string itself. *)
  let blob_of i =
    let b = Bytes.make 24 'b' in
    Bytes.set_int64_le b 0 (Int64.of_int i);
    Bytes.unsafe_to_string b
  in
  (* Admission verdicts: wide-open policy so every check walks the full
     token-bucket path and answers Admit. *)
  let open_policy = { Adm.default_policy with Adm.rate = 1e9; burst = 1e9; queue_cap = max_int } in
  let adm = Adm.create open_policy in
  let n_adm = 200_000 in
  let t0 = Unix.gettimeofday () in
  for i = 0 to n_adm - 1 do
    ignore (Adm.check adm ~now:(float_of_int i *. 1e-6) ~client:(i land 1023) ~blob:(blob_of i) ~pow:"")
  done;
  let adm_rate = float_of_int n_adm /. (Unix.gettimeofday () -. t0) in
  (* Intake submits: dedup digest + queue accounting + a trivial validate,
     sealing every 4096 so the seal/purge cost is amortized in. *)
  let ik = Intake.create ~policy:open_policy () in
  let n_sub = 100_000 in
  let t0 = Unix.gettimeofday () in
  for i = 0 to n_sub - 1 do
    (match
       Intake.submit ik ~now:(float_of_int i *. 1e-6) ~client:(i land 1023) ~blob:(blob_of i)
         ~pow:"" ~validate:(fun ~epoch:_ _ -> true)
     with
    | Intake.Accepted _ -> ()
    | _ -> failwith "bench ingest: open-policy submit not accepted");
    if i land 4095 = 4095 then ignore (Intake.seal ik ~epoch:(Intake.epoch ik))
  done;
  let sub_rate = float_of_int n_sub /. (Unix.gettimeofday () -. t0) in
  (* Hashcash solve rate: what a client pays per submission at each
     difficulty (expected 2^bits hashes per solve). *)
  let pow_rates =
    List.map
      (fun (bits, solves) ->
        let t0 = Unix.gettimeofday () in
        for i = 0 to solves - 1 do
          ignore (Adm.pow_solve ~bits ~blob:(blob_of (0x90000 + i)))
        done;
        (bits, float_of_int solves /. (Unix.gettimeofday () -. t0)))
      [ (8, 40); (12, 6) ]
  in
  Printf.printf "%-34s %14s\n" "layer" "ops/s";
  Printf.printf "%-34s %14.0f\n" "admission verdict" adm_rate;
  Printf.printf "%-34s %14.0f\n" "intake submit (+seal/4096)" sub_rate;
  List.iter
    (fun (bits, r) ->
      Printf.printf "%-34s %14.1f\n" (Printf.sprintf "pow solve (%d bits)" bits) r)
    pow_rates;
  (* End-to-end pipelined epochs: admit U submissions per epoch with the
     real proof verification, mix them through Algorithm 2, seal and sign
     the bulletin. Steady-state throughput is one epoch's posts over one
     epoch's latency — collection overlaps the mix by construction. *)
  let servers = 8 and groups = 4 in
  let config =
    {
      Config.variant = Config.Basic; n_servers = servers; n_groups = groups; group_size = 2;
      h = 1; f = 0.2; topology = Config.Square 3; msg_bytes = 32; seed = 11; mailboxes = 64;
      dummy_mu = 2.; dummy_b = 1.;
    }
  in
  Config.validate config;
  let net = Pr.setup rng config () in
  let bulletin_sk, bulletin_pk = BSign.keypair ~seed:config.Config.seed in
  let board = Bulletin.create () in
  let u_per_epoch = 128 and n_epochs = 6 in
  let lats = Array.make n_epochs 0. in
  let admit_lats = Array.make n_epochs 0. in
  for e = 0 to n_epochs - 1 do
    let subs =
      List.init u_per_epoch (fun i ->
          Pr.submit rng net ~user:i ~entry_gid:(i mod groups) (Printf.sprintf "e%d.m%d" e i))
    in
    let blobs = List.map Pr.Wire.submission_to_bytes subs in
    let ik = Intake.create ~policy:open_policy () in
    let seen = Hashtbl.create 256 in
    let t_adm = Unix.gettimeofday () in
    List.iteri
      (fun i blob ->
        match
          Intake.submit ik ~now:(float_of_int i *. 1e-3) ~client:i ~blob ~pow:""
            ~validate:(fun ~epoch:_ b ->
              match Pr.Wire.submission_of_bytes b with
              | Some s -> Pr.verify_submission net seen s
              | None -> false)
        with
        | Intake.Accepted _ -> ()
        | _ -> failwith "bench ingest: pipeline submission not accepted")
      blobs;
    ignore (Intake.seal ik ~epoch:e);
    admit_lats.(e) <- Unix.gettimeofday () -. t_adm;
    let t_mix = Unix.gettimeofday () in
    let outcome = Pr.run rng net subs in
    (match outcome.Pr.aborted with
    | Some _ -> failwith "bench ingest: epoch aborted"
    | None -> ());
    let sealed = Bulletin.seal ~epoch:e outcome.Pr.delivered in
    let signature = BSign.sign_sealed ~sk:bulletin_sk sealed in
    if not (BSign.verify_sealed ~pk:bulletin_pk sealed ~signature) then
      failwith "bench ingest: bulletin signature check failed";
    Bulletin.publish_sealed board sealed;
    lats.(e) <- Unix.gettimeofday () -. t_mix
  done;
  let p arr q = Atom_util.Stats.percentile arr q in
  let lat_p50 = p lats 50. and lat_p99 = p lats 99. in
  let pipe_sps = float_of_int u_per_epoch /. lat_p50 in
  Printf.printf
    "pipeline: %d submissions/epoch through %d servers (%d groups): admit %.3fs, epoch \
     latency p50/p99 %.3f/%.3f s -> %.1f sub/s (%.2f per node)\n"
    u_per_epoch servers groups (p admit_lats 50.) lat_p50 lat_p99 pipe_sps
    (pipe_sps /. float_of_int servers);
  (* Hostile mix: 4 clients flooding far over the sustained rate with 10%
     garbage blobs; the interesting outputs are the backpressure and
     reject fractions. *)
  let hostile = Adm.create { Adm.default_policy with Adm.rate = 100.; burst = 20. } in
  let offered = 2000 in
  let acc = ref 0 and bp = ref 0 and rej = ref 0 in
  for i = 0 to offered - 1 do
    let garbage = i mod 10 = 0 in
    match
      Adm.check hostile ~now:(float_of_int i *. 1e-4) ~client:(i land 3)
        ~blob:(if garbage then String.make (Adm.default_policy.Adm.max_blob + 1) 'g' else blob_of i)
        ~pow:""
    with
    | Adm.Admit -> incr acc
    | Adm.Backoff _ -> incr bp
    | Adm.Deny _ -> incr rej
  done;
  let frac n = float_of_int n /. float_of_int offered in
  Printf.printf
    "hostile mix: %d offered -> %.1f%% admitted, %.1f%% backpressured, %.1f%% rejected\n\n"
    offered (100. *. frac !acc) (100. *. frac !bp) (100. *. frac !rej);
  if !json_mode then begin
    let buf = Buffer.create 1024 in
    Buffer.add_string buf "{\n  \"schema\": \"atom-bench-ingest/1\",\n  \"group\": \"zp-test\",\n";
    Buffer.add_string buf
      (Printf.sprintf "  \"admission_checks_per_sec\": %.1f,\n  \"intake_submissions_per_sec\": %.1f,\n"
         adm_rate sub_rate);
    Buffer.add_string buf "  \"pow\": [";
    List.iteri
      (fun i (bits, r) ->
        Buffer.add_string buf
          (Printf.sprintf "%s{\"bits\": %d, \"solves_per_sec\": %.2f}"
             (if i = 0 then "" else ", ")
             bits r))
      pow_rates;
    Buffer.add_string buf "],\n";
    Buffer.add_string buf
      (Printf.sprintf
         "  \"pipeline\": {\"servers\": %d, \"groups\": %d, \"users_per_epoch\": %d, \
          \"epochs\": %d, \"admit_s_p50\": %.4f, \"epoch_latency_s\": {\"p50\": %.4f, \
          \"p99\": %.4f}, \"submissions_per_sec\": %.2f, \"submissions_per_sec_per_node\": \
          %.3f},\n"
         servers groups u_per_epoch n_epochs (p admit_lats 50.) lat_p50 lat_p99 pipe_sps
         (pipe_sps /. float_of_int servers));
    Buffer.add_string buf
      (Printf.sprintf
         "  \"rejection\": {\"offered\": %d, \"admitted\": %d, \"backpressured\": %d, \
          \"rejected\": %d, \"backpressure_rate\": %.4f, \"rejected_rate\": %.4f}\n"
         offered !acc !bp !rej (frac !bp) (frac !rej));
    Buffer.add_string buf "}\n";
    let oc = open_out "BENCH_ingest.json" in
    output_string oc (Buffer.contents buf);
    close_out oc;
    Printf.printf "wrote BENCH_ingest.json\n\n"
  end

let experiments : (string * string * (unit -> unit)) list =
  [
    ("table3", "crypto primitive latencies (bechamel)", table3);
    ("wire", "wire codec encode/decode throughput", wire_bench);
    ("ingest", "submission-plane admission/intake/epoch pipeline", ingest_bench);
    ("table4", "group setup latency (DKG)", table4);
    ("fig5", "mixing iteration vs #messages", fig5);
    ("fig6", "mixing iteration vs group size", fig6);
    ("fig7", "speed-up vs cores", fig7);
    ("parallel", "domain-pool scaling of the crypto batches", parallel);
    ("fig8", "fleet and latency model", fig8);
    ("fig9", "end-to-end latency vs #messages", fig9);
    ("fig10", "speed-up vs #servers", fig10);
    ("fig11", "simulated speed-up, 1B messages", fig11);
    ("table12", "comparison with Riposte/Vuvuzela/Alpenhorn", table12);
    ("fig13", "group size vs h", fig13);
    ("costs", "deployment cost estimates", costs);
    ("ablation_topology", "square vs butterfly", ablation_topology);
    ("ablation_mixing", "mixing quality vs T", ablation_mixing);
    ("ablation_traps", "trap detection probability", ablation_traps);
    ("ablation_group", "group backend costs", ablation_group);
    ("ablation_pipeline", "pipelined throughput (4.7)", ablation_pipeline);
    ("ablation_loadbalance", "weighted assignment risk (section 7)", ablation_loadbalance);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let json, args = List.partition (fun a -> a = "--json") args in
  json_mode := json <> [];
  let selected =
    match args with
    | [] -> experiments
    | names ->
        List.filter_map
          (fun n ->
            match List.find_opt (fun (name, _, _) -> name = n) experiments with
            | Some e -> Some e
            | None ->
                Printf.eprintf "unknown experiment %S; available: %s\n" n
                  (String.concat ", " (List.map (fun (n, _, _) -> n) experiments));
                exit 1)
          names
  in
  let t0 = Unix.gettimeofday () in
  List.iter (fun (_, _, f) -> f ()) selected;
  Printf.printf "total bench wall time: %.1f s\n" (Unix.gettimeofday () -. t0)
